package constraint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"omos/internal/osim"
)

func TestPreferredPlacementHonored(t *testing.T) {
	s := NewSolver()
	pl, err := s.Place(Request{
		Key: "a", TextSize: 100, DataSize: 200,
		Prefs: []Pref{{Seg: 'T', Addr: 0x100000}, {Seg: 'D', Addr: 0x200000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.TextBase != 0x100000 || pl.DataBase != 0x200000 || pl.Moved || pl.Reused {
		t.Fatalf("placement = %+v", pl)
	}
}

func TestConflictMovesSecond(t *testing.T) {
	s := NewSolver()
	prefs := []Pref{{Seg: 'T', Addr: 0x100000}}
	p1, err := s.Place(Request{Key: "a", TextSize: osim.PageSize * 3, Prefs: prefs})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Place(Request{Key: "b", TextSize: osim.PageSize, Prefs: prefs})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Moved {
		t.Fatal("conflict not detected")
	}
	if p2.TextBase < p1.TextBase+3*osim.PageSize {
		t.Fatalf("overlap: %#x vs %#x", p2.TextBase, p1.TextBase)
	}
}

func TestReuseSameKey(t *testing.T) {
	s := NewSolver()
	p1, err := s.Place(Request{Key: "lib", TextSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Place(Request{Key: "lib", TextSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Reused || p2.TextBase != p1.TextBase {
		t.Fatalf("reuse failed: %+v vs %+v", p2, p1)
	}
	// Growth beyond the reserved size forces a re-place.
	p3, err := s.Place(Request{Key: "lib", TextSize: 10 * osim.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Reused {
		t.Fatal("grown object wrongly reused")
	}
}

func TestRelease(t *testing.T) {
	s := NewSolver()
	prefs := []Pref{{Seg: 'T', Addr: 0x500000}}
	if _, err := s.Place(Request{Key: "a", TextSize: 100, Prefs: prefs}); err != nil {
		t.Fatal(err)
	}
	s.Release("a")
	p, err := s.Place(Request{Key: "b", TextSize: 100, Prefs: prefs})
	if err != nil {
		t.Fatal(err)
	}
	if p.Moved {
		t.Fatal("released region not reusable")
	}
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("released key still present")
	}
}

func TestReserveConflict(t *testing.T) {
	s := NewSolver()
	if _, err := s.Place(Request{Key: "a", TextSize: osim.PageSize,
		Prefs: []Pref{{Seg: 'T', Addr: 0x300000}}}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Place(Request{Key: "b",
		Reserve: []Region{{Base: 0x300000, Size: osim.PageSize}}})
	if err == nil {
		t.Fatal("reserve over existing placement accepted")
	}
}

func TestBadInputs(t *testing.T) {
	s := NewSolver()
	if _, err := s.Place(Request{}); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := s.Place(Request{Key: "x", TextSize: 1,
		Prefs: []Pref{{Seg: 'Q', Addr: 1}}}); err == nil {
		t.Fatal("bad segment class accepted")
	}
}

// TestNoOverlapProperty: whatever sequence of placements happens, no
// two live regions overlap — the solver's required constraint.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSolver()
		type placed struct {
			key  string
			text Region
			data Region
		}
		var live []placed
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%d", i%12) // occasional reuse
			tsz := uint64(r.Intn(5*osim.PageSize) + 1)
			dsz := uint64(r.Intn(3 * osim.PageSize))
			prefs := []Pref{
				{Seg: 'T', Addr: uint64(r.Intn(8)) * 0x100000},
				{Seg: 'D', Addr: 0x4000_0000 + uint64(r.Intn(8))*0x100000},
			}
			pl, err := s.Place(Request{Key: key, TextSize: tsz, DataSize: dsz, Prefs: prefs})
			if err != nil {
				t.Logf("place: %v", err)
				return false
			}
			if pl.Reused {
				continue
			}
			// Drop any previous record under this key (re-place).
			keep := live[:0]
			for _, p := range live {
				if p.key != key {
					keep = append(keep, p)
				}
			}
			live = keep
			live = append(live, placed{
				key:  key,
				text: Region{Base: pl.TextBase, Size: osim.PageAlign(tsz)},
				data: Region{Base: pl.DataBase, Size: osim.PageAlign(dsz)},
			})
			// Check all pairs.
			var regions []Region
			for _, p := range live {
				if p.text.Size > 0 {
					regions = append(regions, p.text)
				}
				if p.data.Size > 0 {
					regions = append(regions, p.data)
				}
			}
			for a := 0; a < len(regions); a++ {
				for b := a + 1; b < len(regions); b++ {
					if regions[a].overlaps(regions[b]) {
						t.Logf("overlap: %+v and %+v", regions[a], regions[b])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
