// Package constraint implements OMOS's prioritized address-space
// constraint system (§3.5).
//
// The solver manages a global picture of where shared objects live.
// Its constraints, in priority order:
//
//  1. Required: no two placed objects may overlap.
//  2. Strong: existing implementations are reused (so their read-only
//     pages stay shared among clients).
//  3. Weak: user-supplied placement preferences ("T" near 0x1000000)
//     are honored when possible.
//
// When a request conflicts with existing placements, the solver
// resolves it by choosing an alternate region — the server then
// generates (and caches) a new implementation there.  Subsequent
// requests with the same key reuse that placement, matching the
// paper's "subsequent invocations of the same combination ... will use
// the existing set of implementations".
package constraint

import (
	"fmt"
	"sort"

	"omos/internal/osim"
)

// Pref is a weak placement preference for one segment class.
type Pref struct {
	// Seg is 'T' (text) or 'D' (data).
	Seg byte
	// Addr is the preferred base address.
	Addr uint64
}

// Request asks for a placement of an object's segments.
type Request struct {
	// Key identifies the object version; requests with the same key
	// reuse the existing placement if the sizes still fit.
	Key string
	// TextSize and DataSize are the needed extents in bytes (data
	// includes bss).
	TextSize uint64
	DataSize uint64
	// Prefs are weak placement preferences.
	Prefs []Pref
	// Reserve marks regions the requester will manage itself (e.g. a
	// fixed-address client executable); the solver only records them.
	Reserve []Region
}

// Region is a placed address range.
type Region struct {
	Base, Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// overlaps reports whether two regions intersect.
func (r Region) overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// Placement is the solver's answer.
type Placement struct {
	TextBase uint64
	DataBase uint64
	// Reused is true when an existing placement for Key was returned
	// (the cached implementation can be shared as-is).
	Reused bool
	// Moved is true when a weak preference could not be honored and an
	// alternate region was chosen.
	Moved bool
}

// Solver tracks placements.  It is not safe for concurrent use; the
// server serializes access.
type Solver struct {
	// Defaults used when a request carries no preference.
	DefaultText uint64
	DefaultData uint64

	regions    []Region // all reserved/placed regions, unsorted
	placements map[string]Placement
	sizes      map[string][2]uint64 // Key -> {text, data} sizes at placement
	owned      map[string][]Region  // Key -> regions it reserved
}

// NewSolver returns a solver with the paper's default bases (Figure 1
// uses T=0x100000 for clients; libraries default above that).
func NewSolver() *Solver {
	return &Solver{
		DefaultText: 0x0100_0000,
		DefaultData: 0x4100_0000,
		placements:  map[string]Placement{},
		sizes:       map[string][2]uint64{},
		owned:       map[string][]Region{},
	}
}

func (s *Solver) conflicts(r Region) bool {
	for _, o := range s.regions {
		if r.overlaps(o) {
			return true
		}
	}
	return false
}

// findFree locates a free region of size bytes at or near pref,
// scanning upward in page steps from pref, then upward from the
// default base.  Sizes are page aligned.
func (s *Solver) findFree(pref, size uint64) (uint64, bool) {
	size = osim.PageAlign(size)
	if size == 0 {
		size = osim.PageSize
	}
	pref = pref &^ uint64(osim.PageSize-1)
	moved := false
	// Build a sorted copy for gap scanning.
	sorted := append([]Region(nil), s.regions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	cand := pref
	for i := 0; i < len(sorted)+1; i++ {
		r := Region{Base: cand, Size: size}
		conflict := false
		for _, o := range sorted {
			if r.overlaps(o) {
				// Jump past the conflicting region.
				cand = osim.PageAlign(o.End())
				conflict = true
				moved = true
				break
			}
		}
		if !conflict {
			return cand, moved
		}
	}
	return cand, true
}

// Place answers a request.  Identical keys reuse their placement
// (strong constraint); otherwise the weak preferences guide allocation
// and conflicts push the object to the nearest free region.
func (s *Solver) Place(req Request) (Placement, error) {
	if req.Key == "" {
		return Placement{}, fmt.Errorf("constraint: empty placement key")
	}
	if pl, ok := s.placements[req.Key]; ok {
		sz := s.sizes[req.Key]
		if req.TextSize <= sz[0] && req.DataSize <= sz[1] {
			pl.Reused = true
			return pl, nil
		}
		// The object grew; retire the old placement and re-place.
		s.release(req.Key)
	}
	for _, r := range req.Reserve {
		if s.conflicts(r) {
			return Placement{}, fmt.Errorf("constraint: reserved region %#x+%#x conflicts with an existing placement", r.Base, r.Size)
		}
	}
	textPref, dataPref := s.DefaultText, s.DefaultData
	for _, p := range req.Prefs {
		switch p.Seg {
		case 'T':
			textPref = p.Addr
		case 'D':
			dataPref = p.Addr
		default:
			return Placement{}, fmt.Errorf("constraint: unknown segment class %q", string(p.Seg))
		}
	}
	var pl Placement
	var movedT, movedD bool
	// Reserve user regions first so they win over the sized segments.
	var added []Region
	for _, r := range req.Reserve {
		s.regions = append(s.regions, r)
		added = append(added, r)
	}
	if req.TextSize > 0 {
		base, moved := s.findFree(textPref, req.TextSize)
		pl.TextBase = base
		movedT = moved
		r := Region{Base: base, Size: osim.PageAlign(req.TextSize)}
		s.regions = append(s.regions, r)
		added = append(added, r)
	}
	if req.DataSize > 0 {
		base, moved := s.findFree(dataPref, req.DataSize)
		pl.DataBase = base
		movedD = moved
		r := Region{Base: base, Size: osim.PageAlign(req.DataSize)}
		s.regions = append(s.regions, r)
		added = append(added, r)
	}
	pl.Moved = movedT || movedD
	s.placements[req.Key] = pl
	s.sizes[req.Key] = [2]uint64{req.TextSize, req.DataSize}
	// Remember which regions belong to the key so release works.
	s.owned[req.Key] = added
	return pl, nil
}

// Restore re-installs a placement recorded by a previous run (the
// warm-boot path of the persistent image store).  The regions are
// reserved exactly as Place would have left them, so a subsequent
// Place with the same key and sizes reuses the placement — and the
// server therefore recomputes the same placement-dependent cache key
// it persisted.  Restoring a key that is already placed at the same
// bases is a no-op; a conflicting placement or an overlap with an
// existing region is an error (the stored entry is stale).
func (s *Solver) Restore(key string, pl Placement, textSize, dataSize uint64) error {
	if key == "" {
		return fmt.Errorf("constraint: empty placement key")
	}
	if prior, ok := s.placements[key]; ok {
		if prior.TextBase == pl.TextBase && prior.DataBase == pl.DataBase {
			return nil
		}
		return fmt.Errorf("constraint: restore %s: already placed at %#x/%#x, stored %#x/%#x",
			key, prior.TextBase, prior.DataBase, pl.TextBase, pl.DataBase)
	}
	var added []Region
	if textSize > 0 {
		added = append(added, Region{Base: pl.TextBase, Size: osim.PageAlign(textSize)})
	}
	if dataSize > 0 {
		added = append(added, Region{Base: pl.DataBase, Size: osim.PageAlign(dataSize)})
	}
	for _, r := range added {
		if s.conflicts(r) {
			return fmt.Errorf("constraint: restore %s: region %#x+%#x conflicts with an existing placement",
				key, r.Base, r.Size)
		}
	}
	s.regions = append(s.regions, added...)
	s.placements[key] = Placement{TextBase: pl.TextBase, DataBase: pl.DataBase}
	s.sizes[key] = [2]uint64{textSize, dataSize}
	s.owned[key] = added
	return nil
}

// release removes a key's regions.
func (s *Solver) release(key string) {
	owned := s.owned[key]
	keep := s.regions[:0]
	for _, r := range s.regions {
		drop := false
		for _, o := range owned {
			if r == o {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, r)
		}
	}
	s.regions = keep
	delete(s.owned, key)
	delete(s.placements, key)
	delete(s.sizes, key)
}

// Release publicly retires a placement (e.g. when the server evicts a
// cached image).
func (s *Solver) Release(key string) { s.release(key) }

// Lookup returns the current placement for key.
func (s *Solver) Lookup(key string) (Placement, bool) {
	pl, ok := s.placements[key]
	return pl, ok
}

// Keys returns the placed keys, sorted (for deterministic reporting).
func (s *Solver) Keys() []string {
	out := make([]string, 0, len(s.placements))
	for k := range s.placements {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
