package constraint

import (
	"fmt"
	"sort"

	"omos/internal/osim"
)

// This file implements the "more sophisticated constraint system"
// the paper's future-work section describes (§10): a constraint
// *hierarchy* in the style of the University of Washington's
// Delta-Blue solver [17].  Constraints carry strengths; a placement is
// chosen by comparing candidates lexicographically on how many
// constraints they satisfy at each strength, strongest first
// (Delta-Blue's "locally-predicate-better" comparator).  Required
// constraints must hold outright.
//
// The basic Solver (constraint.go) remains the default engine — it
// matches the paper's shipped behaviour; the Hierarchy is the upgrade
// path and is exercised by its own tests and the constraints
// benchmark.

// Strength orders constraints.  Required must be satisfied; the rest
// are preferences of decreasing importance.
type Strength int

// Strengths, strongest first.
const (
	Required Strength = iota
	Strong
	Medium
	Weak
)

// String names the strength.
func (s Strength) String() string {
	switch s {
	case Required:
		return "required"
	case Strong:
		return "strong"
	case Medium:
		return "medium"
	case Weak:
		return "weak"
	}
	return fmt.Sprintf("strength(%d)", int(s))
}

// PlacementConstraint is one requirement on a candidate base address.
type PlacementConstraint interface {
	// Strength is the constraint's place in the hierarchy.
	Strength() Strength
	// Satisfied reports whether base satisfies the constraint for an
	// object of the given size, in the context of the hierarchy's
	// current placements.
	Satisfied(h *Hierarchy, base, size uint64) bool
	// Candidates proposes base addresses worth trying (may be nil).
	Candidates(h *Hierarchy, size uint64) []uint64
	String() string
}

// PreferAt is the weak user preference: place at (or as near above as
// possible to) Addr.
type PreferAt struct {
	Addr uint64
	// Str defaults to Weak when zero... Required is zero, so the
	// strength is explicit.
	Str Strength
}

// Strength implements PlacementConstraint.
func (c PreferAt) Strength() Strength { return c.Str }

// Satisfied implements PlacementConstraint.
func (c PreferAt) Satisfied(_ *Hierarchy, base, _ uint64) bool { return base == c.Addr }

// Candidates implements PlacementConstraint.
func (c PreferAt) Candidates(_ *Hierarchy, _ uint64) []uint64 { return []uint64{c.Addr} }

// String renders the constraint for diagnostics.
func (c PreferAt) String() string { return fmt.Sprintf("prefer-at(%#x,%s)", c.Addr, c.Str) }

// Within requires (or prefers) the whole object inside [Lo, Hi).
type Within struct {
	Lo, Hi uint64
	Str    Strength
}

// Strength implements PlacementConstraint.
func (c Within) Strength() Strength { return c.Str }

// Satisfied implements PlacementConstraint.
func (c Within) Satisfied(_ *Hierarchy, base, size uint64) bool {
	return base >= c.Lo && base+size <= c.Hi
}

// Candidates implements PlacementConstraint.
func (c Within) Candidates(_ *Hierarchy, _ uint64) []uint64 { return []uint64{c.Lo} }

// String renders the constraint for diagnostics.
func (c Within) String() string { return fmt.Sprintf("within(%#x..%#x,%s)", c.Lo, c.Hi, c.Str) }

// Near prefers placement within Dist bytes of another placed object
// (e.g. a library near its client, to keep translation reach short).
type Near struct {
	Key  string
	Dist uint64
	Str  Strength
}

// Strength implements PlacementConstraint.
func (c Near) Strength() Strength { return c.Str }

// Satisfied implements PlacementConstraint.
func (c Near) Satisfied(h *Hierarchy, base, size uint64) bool {
	r, ok := h.regionOf(c.Key)
	if !ok {
		return false
	}
	gap := uint64(0)
	switch {
	case base >= r.End():
		gap = base - r.End()
	case base+size <= r.Base:
		gap = r.Base - (base + size)
	}
	return gap <= c.Dist
}

// Candidates implements PlacementConstraint.
func (c Near) Candidates(h *Hierarchy, size uint64) []uint64 {
	r, ok := h.regionOf(c.Key)
	if !ok {
		return nil
	}
	out := []uint64{osim.PageAlign(r.End())}
	if r.Base >= osim.PageAlign(size) {
		out = append(out, (r.Base-size) & ^uint64(osim.PageSize-1))
	}
	return out
}

// String renders the constraint for diagnostics.
func (c Near) String() string { return fmt.Sprintf("near(%s,%#x,%s)", c.Key, c.Dist, c.Str) }

// Hierarchy is a constraint-hierarchy placement engine.  Like Solver,
// it maintains a global no-overlap world; unlike Solver, arbitrary
// strength-ranked constraints guide each placement.
type Hierarchy struct {
	regions map[string]Region
	// DefaultBase seeds candidate generation when no constraint
	// proposes anything.
	DefaultBase uint64
}

// NewHierarchy returns an empty world.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{regions: map[string]Region{}, DefaultBase: 0x0100_0000}
}

func (h *Hierarchy) regionOf(key string) (Region, bool) {
	r, ok := h.regions[key]
	return r, ok
}

// Regions returns the current placements keyed by owner.
func (h *Hierarchy) Regions() map[string]Region {
	out := make(map[string]Region, len(h.regions))
	for k, v := range h.regions {
		out[k] = v
	}
	return out
}

// Release removes a placement.
func (h *Hierarchy) Release(key string) { delete(h.regions, key) }

func (h *Hierarchy) overlapsAny(r Region) bool {
	for _, o := range h.regions {
		if r.overlaps(o) {
			return true
		}
	}
	return false
}

// score is a lexicographic satisfaction vector: satisfied counts per
// non-required strength.
type score [3]int

func (a score) better(b score) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}

// Place chooses the best base address for key under the constraint
// hierarchy and records it.  The implicit required constraints — page
// alignment and no overlap with existing placements — always apply.
func (h *Hierarchy) Place(key string, size uint64, cons []PlacementConstraint) (uint64, error) {
	if key == "" {
		return 0, fmt.Errorf("constraint: empty key")
	}
	if _, dup := h.regions[key]; dup {
		return 0, fmt.Errorf("constraint: %s already placed", key)
	}
	size = osim.PageAlign(size)
	if size == 0 {
		size = osim.PageSize
	}

	// Gather candidates: every constraint's proposals, the first free
	// gap after each existing region, and the default base.
	cands := map[uint64]bool{h.DefaultBase: true}
	for _, c := range cons {
		for _, a := range c.Candidates(h, size) {
			cands[a & ^uint64(osim.PageSize-1)] = true
		}
	}
	for _, r := range h.regions {
		cands[osim.PageAlign(r.End())] = true
	}
	// Repair each candidate to the nearest free address at or above
	// it, so required feasibility is always achievable.
	repaired := map[uint64]bool{}
	for a := range cands {
		repaired[h.slideUp(a, size)] = true
	}

	type ranked struct {
		base uint64
		sc   score
	}
	var best *ranked
	for base := range repaired {
		r := Region{Base: base, Size: size}
		if h.overlapsAny(r) {
			continue // required violated even after repair (shouldn't happen)
		}
		ok := true
		var sc score
		for _, c := range cons {
			sat := c.Satisfied(h, base, size)
			switch c.Strength() {
			case Required:
				if !sat {
					ok = false
				}
			case Strong:
				if sat {
					sc[0]++
				}
			case Medium:
				if sat {
					sc[1]++
				}
			case Weak:
				if sat {
					sc[2]++
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || sc.better(best.sc) || (sc == best.sc && base < best.base) {
			best = &ranked{base: base, sc: sc}
		}
	}
	if best == nil {
		return 0, fmt.Errorf("constraint: no placement satisfies the required constraints for %s", key)
	}
	h.regions[key] = Region{Base: best.base, Size: size}
	return best.base, nil
}

// slideUp finds the lowest page-aligned address >= a whose [a, a+size)
// is free.
func (h *Hierarchy) slideUp(a, size uint64) uint64 {
	a = a & ^uint64(osim.PageSize-1)
	regs := make([]Region, 0, len(h.regions))
	for _, r := range h.regions {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Base < regs[j].Base })
	for {
		r := Region{Base: a, Size: size}
		moved := false
		for _, o := range regs {
			if r.overlaps(o) {
				a = osim.PageAlign(o.End())
				r.Base = a
				moved = true
			}
		}
		if !moved {
			return a
		}
	}
}
