package constraint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"omos/internal/osim"
)

func TestHierarchyPreferAt(t *testing.T) {
	h := NewHierarchy()
	base, err := h.Place("a", 100, []PlacementConstraint{PreferAt{Addr: 0x200000, Str: Weak}})
	if err != nil {
		t.Fatal(err)
	}
	if base != 0x200000 {
		t.Fatalf("base = %#x", base)
	}
	// Conflicting weak preference slides up but places.
	base2, err := h.Place("b", 100, []PlacementConstraint{PreferAt{Addr: 0x200000, Str: Weak}})
	if err != nil {
		t.Fatal(err)
	}
	if base2 == 0x200000 || base2 < 0x200000 {
		t.Fatalf("base2 = %#x", base2)
	}
}

func TestHierarchyRequiredWithin(t *testing.T) {
	h := NewHierarchy()
	// Fill the window.
	if _, err := h.Place("blocker", 3*osim.PageSize, []PlacementConstraint{
		PreferAt{Addr: 0x100000, Str: Weak},
	}); err != nil {
		t.Fatal(err)
	}
	// Required within a window that is fully occupied must fail.
	_, err := h.Place("x", osim.PageSize, []PlacementConstraint{
		Within{Lo: 0x100000, Hi: 0x100000 + 3*osim.PageSize, Str: Required},
	})
	if err == nil {
		t.Fatal("unsatisfiable required constraint accepted")
	}
	// The same window as a Medium preference degrades gracefully.
	base, err := h.Place("y", osim.PageSize, []PlacementConstraint{
		Within{Lo: 0x100000, Hi: 0x100000 + 3*osim.PageSize, Str: Medium},
		PreferAt{Addr: 0x100000, Str: Weak},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base < 0x100000+3*osim.PageSize && base >= 0x100000 {
		t.Fatalf("placed inside a full window: %#x", base)
	}
}

func TestHierarchyStrengthOrdering(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Place("lib", 2*osim.PageSize, []PlacementConstraint{
		PreferAt{Addr: 0x300000, Str: Weak},
	}); err != nil {
		t.Fatal(err)
	}
	// Strong "near lib" must beat weak "at 0x700000".
	base, err := h.Place("client", osim.PageSize, []PlacementConstraint{
		Near{Key: "lib", Dist: 0, Str: Strong},
		PreferAt{Addr: 0x700000, Str: Weak},
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := h.Regions()["lib"]
	if base != osim.PageAlign(lib.End()) && base+osim.PageSize != lib.Base {
		t.Fatalf("client at %#x not adjacent to lib %+v", base, lib)
	}
}

func TestHierarchyNearBelow(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Place("lib", osim.PageSize, []PlacementConstraint{
		PreferAt{Addr: 0x500000, Str: Weak},
	}); err != nil {
		t.Fatal(err)
	}
	// Block the space above so the below-candidate wins.
	if _, err := h.Place("above", 4*osim.PageSize, []PlacementConstraint{
		PreferAt{Addr: 0x501000, Str: Weak},
	}); err != nil {
		t.Fatal(err)
	}
	base, err := h.Place("client", osim.PageSize, []PlacementConstraint{
		Near{Key: "lib", Dist: 0, Str: Strong},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base != 0x500000-osim.PageSize {
		t.Fatalf("client at %#x, want just below lib", base)
	}
}

func TestHierarchyDuplicateKey(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Place("a", 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Place("a", 10, nil); err == nil {
		t.Fatal("duplicate key accepted")
	}
	h.Release("a")
	if _, err := h.Place("a", 10, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyNoOverlapProperty: whatever constraints are thrown at
// it, placements never overlap.
func TestHierarchyNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHierarchy()
		var placed []Region
		for i := 0; i < 15; i++ {
			size := uint64(r.Intn(4*osim.PageSize) + 1)
			var cons []PlacementConstraint
			if r.Intn(2) == 0 {
				cons = append(cons, PreferAt{
					Addr: uint64(r.Intn(16)) * 0x80000,
					Str:  Strength(1 + r.Intn(3)),
				})
			}
			if len(placed) > 0 && r.Intn(2) == 0 {
				cons = append(cons, Near{
					Key: fmt.Sprintf("k%d", r.Intn(i)), Dist: uint64(r.Intn(0x10000)),
					Str: Strength(1 + r.Intn(3)),
				})
			}
			base, err := h.Place(fmt.Sprintf("k%d", i), size, cons)
			if err != nil {
				t.Logf("place failed: %v", err)
				return false
			}
			nr := Region{Base: base, Size: osim.PageAlign(size)}
			for _, o := range placed {
				if nr.overlaps(o) {
					t.Logf("overlap %+v vs %+v", nr, o)
					return false
				}
			}
			placed = append(placed, nr)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStrengthString(t *testing.T) {
	if Required.String() != "required" || Weak.String() != "weak" {
		t.Fatal("strength names")
	}
}
