package asm

import (
	"testing"

	"omos/internal/obj"
	"omos/internal/vm"
)

const helloSrc = `
; compute 6*7 and halt with result in r0
.text
main:
    movi r1, 6
    movi r2, 7
    mul  r0, r1, r2
    halt
`

func TestAssembleAndRun(t *testing.T) {
	o, err := Assemble("hello.s", helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(o.Text); got != 4*vm.InstSize {
		t.Fatalf("text size = %d, want %d", got, 4*vm.InstSize)
	}
	mem := vm.NewFlatMemory(0, 4096)
	copy(mem.Data, o.Text)
	cpu := vm.New(mem, nil)
	cpu.R[vm.RegSP] = 4096
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.R[0] != 42 {
		t.Fatalf("r0 = %d, want 42", cpu.R[0])
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
.text
main:
    movi r1, 0
    movi r2, 10
    movi r0, 0
.Lloop:
    add r0, r0, r1
    addi r1, r1, 1
    blt r1, r2, .Lloop
    halt
`
	o, err := Assemble("loop.s", src)
	if err != nil {
		t.Fatal(err)
	}
	mem := vm.NewFlatMemory(0, 4096)
	copy(mem.Data, o.Text)
	cpu := vm.New(mem, nil)
	cpu.R[vm.RegSP] = 4096
	if err := cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if cpu.R[0] != 45 {
		t.Fatalf("sum = %d, want 45", cpu.R[0])
	}
	// .Lloop should be a local symbol.
	s := o.FindSym(".Lloop")
	if s == nil || s.Bind != obj.BindLocal {
		t.Fatalf("expected local .Lloop symbol, got %+v", s)
	}
}

func TestCallAndData(t *testing.T) {
	src := `
.text
main:
    call double
    halt
double:
    lea r2, =val
    ld  r1, [r2]
    add r0, r1, r1
    ret
.data
val:
    .quad 21
`
	o, err := Assemble("call.s", src)
	if err != nil {
		t.Fatal(err)
	}
	// Expect two relocs: call target and lea =val.
	if len(o.Relocs) != 2 {
		t.Fatalf("relocs = %d, want 2: %v", len(o.Relocs), o.Relocs)
	}
	// Hand-link: text at 0, data right after, stack at top.
	textBase := uint64(0)
	dataBase := uint64(len(o.Text))
	mem := vm.NewFlatMemory(0, 8192)
	copy(mem.Data, o.Text)
	copy(mem.Data[dataBase:], o.Data)
	addrOf := func(name string) uint64 {
		s := o.FindSym(name)
		if s == nil || !s.Defined {
			t.Fatalf("symbol %s undefined", name)
		}
		switch s.Section {
		case obj.SecText:
			return textBase + s.Offset
		default:
			return dataBase + s.Offset
		}
	}
	for _, r := range o.Relocs {
		if r.Kind != obj.RelAbs64 {
			t.Fatalf("unexpected reloc kind %s", r.Kind)
		}
		v := addrOf(r.Symbol) + uint64(r.Addend)
		site := textBase + r.Offset
		if r.Section == obj.SecData {
			site = dataBase + r.Offset
		}
		var b [8]byte
		putU64(b[:], v)
		copy(mem.Data[site:], b[:])
	}
	cpu := vm.New(mem, nil)
	cpu.R[vm.RegSP] = 8192
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.R[0] != 42 {
		t.Fatalf("r0 = %d, want 42", cpu.R[0])
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []string{
		".text\n.quad", // missing operand -> parsed as empty -> error
		".bogus x",
		".text\nfoo:\nfoo:", // duplicate label
		".text\nmovi r99, 1",
		".text\nbeq r1, r2, nowhere",
		".data\nmovi r1, 2", // instruction outside .text
	}
	for _, src := range cases {
		if _, err := Assemble("bad.s", src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestStringData(t *testing.T) {
	src := `
.data
msg:
    .asciz "hi\n"
len:
    .quad 3
`
	o, err := Assemble("str.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if string(o.Data[:4]) != "hi\n\x00" {
		t.Fatalf("data = %q", o.Data)
	}
	s := o.FindSym("msg")
	if s.Size != 4 {
		t.Fatalf("msg size = %d, want 4", s.Size)
	}
}
