package asm

import "testing"

// FuzzAssemble: arbitrary source must never panic the assembler;
// successful assemblies must produce valid objects.
func FuzzAssemble(f *testing.F) {
	f.Add(".text\nmain:\n    movi r1, 42\n    halt\n")
	f.Add(".data\ns:\n    .asciz \"x\"\n")
	f.Add(".text\nf:\n    ldg r1, @g\n    callpc h\n")
	f.Add(":::")
	f.Add(".quad")
	f.Fuzz(func(t *testing.T, src string) {
		o, err := Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("assembler produced invalid object: %v", err)
		}
	})
}
