// Package asm implements the assembler for the simulated machine,
// producing ROF relocatable objects.
//
// Syntax overview (one statement per line; ';' or '#' starts a comment):
//
//	.text | .data | .bss          select current section
//	.global NAME | .local NAME    set symbol binding (default: global,
//	                              or local for names starting ".L")
//	NAME:                         define a label at the current offset
//	.quad V[, V...]               emit 64-bit words (V may be =sym+off)
//	.byte V[, V...]               emit bytes
//	.asciz "str"                  emit a NUL-terminated string
//	.ascii "str"                  emit string bytes, no NUL
//	.space N                      emit N zero bytes (or reserve in .bss)
//
// Instructions use the mnemonics from the vm package:
//
//	movi r1, 42          ; also: movi r1, 'c', movi r1, =sym+8 (ABS64 reloc)
//	lea  r2, =buf        ; address materialization, ABS64 reloc
//	ld   r3, [r2+8]      ; also st, ld8, st8
//	add  r1, r2, r3      ; three-register ALU ops
//	addi r1, r2, 16
//	jmp  label           ; pc-relative, resolved at assembly
//	beq  r1, r2, label
//	call foo             ; absolute call: ABS64 reloc unless foo is local
//	callpc foo           ; pc-relative call: PC64 reloc if foo external
//	ldg  r4, @foo        ; load foo's GOT slot pc-relatively (GOTSLOT reloc)
//	sys  3
//
// Branch targets must be labels defined in the same object's text
// section; call/callpc/lea/movi/.quad may reference external symbols,
// producing relocations.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"omos/internal/obj"
	"omos/internal/vm"
)

// Error describes an assembly failure with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

// Error formats the position-tagged message.
func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type asmSym struct {
	name    string
	bind    obj.Binding
	kind    obj.SymKind
	defined bool
	section obj.SectionKind
	offset  uint64
}

type assembler struct {
	file    string
	section obj.SectionKind
	text    []byte
	data    []byte
	bss     uint64

	syms     map[string]*asmSym
	symOrder []string
	binds    map[string]obj.Binding // explicit .global/.local requests
	relocs   []obj.Reloc
}

// Assemble assembles src into a relocatable object.  name becomes the
// object's diagnostic name and the File in error positions.
func Assemble(name, src string) (*obj.Object, error) {
	a := &assembler{
		file:  name,
		syms:  make(map[string]*asmSym),
		binds: make(map[string]obj.Binding),
	}
	lines := strings.Split(src, "\n")

	// Pass 1: compute label offsets and section sizes.
	if err := a.scan(lines, true); err != nil {
		return nil, err
	}
	// Reset section cursors for pass 2.
	a.text = a.text[:0]
	a.data = a.data[:0]
	a.bss = 0
	a.section = obj.SecText
	a.relocs = a.relocs[:0]
	if err := a.scan(lines, false); err != nil {
		return nil, err
	}
	return a.finish()
}

// scan runs one pass over the source.  In pass 1 (sizing=true) it only
// tracks offsets and label definitions; in pass 2 it emits code, data,
// and relocations.
func (a *assembler) scan(lines []string, sizing bool) error {
	a.section = obj.SecText
	for i, raw := range lines {
		lineno := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several on one line before a statement).
		for {
			idx := labelEnd(line)
			if idx < 0 {
				break
			}
			name := line[:idx]
			if sizing {
				if err := a.defineLabel(name, lineno); err != nil {
					return err
				}
			}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		var err error
		if strings.HasPrefix(line, ".") {
			err = a.directive(line, lineno, sizing)
		} else {
			err = a.instruction(line, lineno, sizing)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// labelEnd returns the index of ':' if line begins with "ident:", else -1.
func labelEnd(line string) int {
	for i, r := range line {
		if r == ':' {
			if i == 0 {
				return -1
			}
			return i
		}
		if !isIdentRune(r, i == 0) {
			return -1
		}
	}
	return -1
}

func isIdentRune(r rune, first bool) bool {
	if r == '_' || r == '.' || r == '$' {
		return true
	}
	if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
		return true
	}
	if !first && r >= '0' && r <= '9' {
		return true
	}
	return false
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) curOffset() uint64 {
	switch a.section {
	case obj.SecText:
		return uint64(len(a.text))
	case obj.SecData:
		return uint64(len(a.data))
	default:
		return a.bss
	}
}

func (a *assembler) defineLabel(name string, line int) error {
	s := a.lookup(name)
	if s.defined {
		return a.errf(line, "label %q redefined", name)
	}
	s.defined = true
	s.section = a.section
	s.offset = a.curOffset()
	if a.section == obj.SecText {
		s.kind = obj.SymFunc
	} else {
		s.kind = obj.SymData
	}
	return nil
}

// lookup finds or creates the symbol record for name.
func (a *assembler) lookup(name string) *asmSym {
	if s, ok := a.syms[name]; ok {
		return s
	}
	bind := obj.BindGlobal
	if strings.HasPrefix(name, ".L") {
		bind = obj.BindLocal
	}
	s := &asmSym{name: name, bind: bind}
	a.syms[name] = s
	a.symOrder = append(a.symOrder, name)
	return s
}

func (a *assembler) emit(p []byte) {
	switch a.section {
	case obj.SecText:
		a.text = append(a.text, p...)
	case obj.SecData:
		a.data = append(a.data, p...)
	}
}

func (a *assembler) finish() (*obj.Object, error) {
	o := &obj.Object{
		Name:    a.file,
		Text:    a.text,
		Data:    a.data,
		BSSSize: a.bss,
		Relocs:  a.relocs,
	}
	// Apply explicit binding directives.
	for name, b := range a.binds {
		a.lookup(name).bind = b
	}
	// Compute function/data sizes: distance to the next defined symbol
	// in the same section, or to section end.
	type defsym struct {
		s   *asmSym
		off uint64
	}
	bySec := map[obj.SectionKind][]defsym{}
	for _, name := range a.symOrder {
		s := a.syms[name]
		if s.defined {
			bySec[s.section] = append(bySec[s.section], defsym{s, s.offset})
		}
	}
	sizes := map[string]uint64{}
	for sec, list := range bySec {
		sort.Slice(list, func(i, j int) bool { return list[i].off < list[j].off })
		end := uint64(0)
		switch sec {
		case obj.SecText:
			end = uint64(len(a.text))
		case obj.SecData:
			end = uint64(len(a.data))
		case obj.SecBSS:
			end = a.bss
		}
		for i, d := range list {
			hi := end
			if i+1 < len(list) {
				hi = list[i+1].off
			}
			sizes[d.s.name] = hi - d.off
		}
	}
	for _, name := range a.symOrder {
		s := a.syms[name]
		sym := obj.Symbol{
			Name:    s.name,
			Kind:    s.kind,
			Bind:    s.bind,
			Defined: s.defined,
			Section: s.section,
			Offset:  s.offset,
			Size:    sizes[s.name],
		}
		o.Syms = append(o.Syms, sym)
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("asm %s: %w", a.file, err)
	}
	return o, nil
}

// operand parsing ----------------------------------------------------

// splitOperands splits on commas not inside quotes.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

var regNames = map[string]uint8{
	"sp": vm.RegSP, "fp": vm.RegFP,
}

func parseReg(s string) (uint8, bool) {
	s = strings.ToLower(s)
	if r, ok := regNames[s]; ok {
		return r, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < vm.NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

// parseInt parses decimal, hex (0x), and character ('c') literals.
func parseInt(s string) (int64, bool) {
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, false
		}
		return int64(body[0]), true
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, false
		}
		return int64(u), true
	}
	return v, true
}

// symRef is "=name" or "=name+off" or "=name-off".
func parseSymRef(s string) (name string, addend int64, ok bool) {
	if !strings.HasPrefix(s, "=") {
		return "", 0, false
	}
	s = s[1:]
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			off, err := strconv.ParseInt(s[i:], 0, 64)
			if err != nil {
				return "", 0, false
			}
			return s[:i], off, true
		}
	}
	if s == "" {
		return "", 0, false
	}
	return s, 0, true
}

// parseMem parses "[rb]", "[rb+off]", "[rb-off]".
func parseMem(s string) (rb uint8, off int64, ok bool) {
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, false
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	i := strings.IndexAny(body, "+-")
	if i < 0 {
		r, ok := parseReg(body)
		return r, 0, ok
	}
	r, ok1 := parseReg(strings.TrimSpace(body[:i]))
	v, ok2 := parseInt(strings.TrimSpace(body[i:]))
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return r, v, true
}
