package asm

import (
	"testing"

	"omos/internal/obj"
	"omos/internal/vm"
)

func mustAssemble(t *testing.T, src string) *obj.Object {
	t.Helper()
	o, err := Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRelocKinds(t *testing.T) {
	o := mustAssemble(t, `
.text
f:
    lea r1, =g          ; abs64
    lea r2, =g+16       ; abs64 with addend
    call h              ; abs64 (call)
    callpc h            ; pc64 (external)
    leapc r3, =g        ; pc64
    ldg r4, @g          ; gotslot
    ret
.data
d:
    .quad =g
    .quad =g-8
`)
	kinds := map[obj.RelocKind]int{}
	var addends []int64
	for _, r := range o.Relocs {
		kinds[r.Kind]++
		addends = append(addends, r.Addend)
	}
	if kinds[obj.RelAbs64] != 5 { // lea x2, call, .quad x2
		t.Fatalf("abs64 = %d (relocs %v)", kinds[obj.RelAbs64], o.Relocs)
	}
	if kinds[obj.RelPC64] != 2 {
		t.Fatalf("pc64 = %d", kinds[obj.RelPC64])
	}
	if kinds[obj.RelGotSlot] != 1 {
		t.Fatalf("gotslot = %d", kinds[obj.RelGotSlot])
	}
	found16, foundMinus8 := false, false
	for _, a := range addends {
		if a == 16 {
			found16 = true
		}
		if a == -8 {
			foundMinus8 = true
		}
	}
	if !found16 || !foundMinus8 {
		t.Fatalf("addends = %v", addends)
	}
}

func TestCallPCLocalResolvesAtAssembly(t *testing.T) {
	o := mustAssemble(t, `
.text
a:
    callpc b
    ret
b:
    ret
`)
	// Local pc-relative call needs no relocation.
	if len(o.Relocs) != 0 {
		t.Fatalf("relocs = %v", o.Relocs)
	}
	in, err := vm.Decode(o.Text[:vm.InstSize])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != vm.CALLPC || in.Imm != 24 { // b is at offset 24, call at 0
		t.Fatalf("callpc imm = %d", int64(in.Imm))
	}
}

func TestAlignDirective(t *testing.T) {
	o := mustAssemble(t, `
.data
a:
    .byte 1
.align 8
b:
    .quad 2
.bss
c:
    .space 3
.align 16
d:
    .space 8
`)
	bSym := o.FindSym("b")
	if bSym.Offset%8 != 0 {
		t.Fatalf("b at %d", bSym.Offset)
	}
	dSym := o.FindSym("d")
	if dSym.Offset%16 != 0 {
		t.Fatalf("d at %d", dSym.Offset)
	}
}

func TestAsciiVsAsciz(t *testing.T) {
	o := mustAssemble(t, `
.data
a:
    .ascii "ab"
b:
    .asciz "cd"
`)
	if string(o.Data) != "ab"+"cd\x00" {
		t.Fatalf("data = %q", o.Data)
	}
}

func TestCharAndHexLiterals(t *testing.T) {
	o := mustAssemble(t, `
.text
f:
    movi r1, 'A'
    movi r2, 0xFF
    movi r3, -5
    halt
`)
	dec := func(i int) vm.Inst {
		in, err := vm.Decode(o.Text[i*vm.InstSize:])
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	if dec(0).Imm != 'A' || dec(1).Imm != 0xFF || int64(dec(2).Imm) != -5 {
		t.Fatalf("immediates: %v %v %v", dec(0).Imm, dec(1).Imm, int64(dec(2).Imm))
	}
}

func TestGlobalLocalDirectives(t *testing.T) {
	o := mustAssemble(t, `
.text
.local exported_not
exported_not:
    ret
.global made_global
made_global:
    ret
`)
	if s := o.FindSym("exported_not"); s.Bind != obj.BindLocal {
		t.Fatalf("exported_not bind = %v", s.Bind)
	}
	if s := o.FindSym("made_global"); s.Bind != obj.BindGlobal {
		t.Fatalf("made_global bind = %v", s.Bind)
	}
}

func TestMemOperandForms(t *testing.T) {
	o := mustAssemble(t, `
.text
f:
    ld r1, [r2]
    ld r1, [r2+8]
    ld r1, [r2-8]
    ld r1, [sp+16]
    st [fp-24], r3
    halt
`)
	in, _ := vm.Decode(o.Text[3*vm.InstSize:])
	if in.Rb != vm.RegSP || in.Imm != 16 {
		t.Fatalf("sp operand: %+v", in)
	}
	in, _ = vm.Decode(o.Text[4*vm.InstSize:])
	if in.Rb != vm.RegFP || int64(in.Imm) != -24 {
		t.Fatalf("fp operand: %+v", in)
	}
}

func TestMoreErrors(t *testing.T) {
	cases := []string{
		".text\nf:\n    ldg r1, g",     // missing @
		".text\nf:\n    leapc r1, g",   // missing =
		".text\nf:\n    ld r1, [r2+x]", // bad offset
		".text\nf:\n    movi r1",       // arity
		".text\nf:\n    add r1, r2",    // arity
		".align 3",                     // non power of two
		".space -1",                    // negative
		".ascii noquotes",              // bad string
		".data\nx:\n    .quad =",       // empty symbol ref
	}
	for _, src := range cases {
		if _, err := Assemble("bad.s", src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestFunctionSizes(t *testing.T) {
	o := mustAssemble(t, `
.text
first:
    nop
    nop
    ret
second:
    ret
`)
	if s := o.FindSym("first"); s.Size != 3*vm.InstSize {
		t.Fatalf("first size = %d", s.Size)
	}
	if s := o.FindSym("second"); s.Size != vm.InstSize {
		t.Fatalf("second size = %d", s.Size)
	}
}
