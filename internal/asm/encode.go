package asm

import (
	"strconv"
	"strings"

	"omos/internal/obj"
	"omos/internal/vm"
)

// directive handles a "."-prefixed statement.
func (a *assembler) directive(line string, lineno int, sizing bool) error {
	fields := strings.SplitN(line, " ", 2)
	name := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch name {
	case ".text":
		a.section = obj.SecText
	case ".data":
		a.section = obj.SecData
	case ".bss":
		a.section = obj.SecBSS
	case ".global", ".globl":
		if rest == "" {
			return a.errf(lineno, "%s requires a symbol name", name)
		}
		a.binds[rest] = obj.BindGlobal
	case ".local":
		if rest == "" {
			return a.errf(lineno, ".local requires a symbol name")
		}
		a.binds[rest] = obj.BindLocal
	case ".quad":
		if a.section == obj.SecBSS {
			return a.errf(lineno, ".quad not allowed in .bss")
		}
		if rest == "" {
			return a.errf(lineno, ".quad requires at least one operand")
		}
		for _, op := range splitOperands(rest) {
			if sym, add, ok := parseSymRef(op); ok {
				if !sizing {
					a.lookup(sym)
					a.relocs = append(a.relocs, obj.Reloc{
						Section: a.section,
						Offset:  a.curOffset(),
						Symbol:  sym,
						Kind:    obj.RelAbs64,
						Addend:  add,
					})
				}
				a.emit(make([]byte, 8))
				continue
			}
			v, ok := parseInt(op)
			if !ok {
				return a.errf(lineno, "bad .quad operand %q", op)
			}
			var b [8]byte
			putU64(b[:], uint64(v))
			a.emit(b[:])
		}
	case ".byte":
		if a.section == obj.SecBSS {
			return a.errf(lineno, ".byte not allowed in .bss")
		}
		if rest == "" {
			return a.errf(lineno, ".byte requires at least one operand")
		}
		for _, op := range splitOperands(rest) {
			v, ok := parseInt(op)
			if !ok {
				return a.errf(lineno, "bad .byte operand %q", op)
			}
			a.emit([]byte{byte(v)})
		}
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(lineno, "bad string %s", rest)
		}
		a.emit([]byte(s))
		if name == ".asciz" {
			a.emit([]byte{0})
		}
	case ".space":
		v, ok := parseInt(rest)
		if !ok || v < 0 {
			return a.errf(lineno, "bad .space operand %q", rest)
		}
		if a.section == obj.SecBSS {
			a.bss += uint64(v)
		} else {
			a.emit(make([]byte, v))
		}
	case ".align":
		v, ok := parseInt(rest)
		if !ok || v <= 0 || v&(v-1) != 0 {
			return a.errf(lineno, "bad .align operand %q", rest)
		}
		for a.curOffset()%uint64(v) != 0 {
			if a.section == obj.SecBSS {
				a.bss++
			} else {
				a.emit([]byte{0})
			}
		}
	default:
		return a.errf(lineno, "unknown directive %s", name)
	}
	return nil
}

// opSpec describes an instruction's operand shape for generic encoding.
type opShape int

const (
	shapeNone    opShape = iota // op
	shapeRa                     // op ra
	shapeRaRb                   // op ra, rb
	shapeRaRbRc                 // op ra, rb, rc
	shapeRaImm                  // op ra, imm|=sym
	shapeRaRbImm                // op ra, rb, imm
	shapeImm                    // op imm
	shapeBranch                 // op ra, rb, label
	shapeJump                   // op label (pc-relative)
	shapeCallAbs                // op sym (absolute, reloc)
	shapeCallPC                 // op sym (pc-relative, reloc if external)
	shapeLoad                   // op ra, [rb+off]
	shapeStore                  // op [rb+off], ra
	shapeGot                    // op ra, @sym
	shapePCRef                  // op ra, =sym  (pc-relative symbol ref)
)

var instTable = map[string]struct {
	op    vm.Op
	shape opShape
}{
	"halt": {vm.HALT, shapeNone},
	"nop":  {vm.NOP, shapeNone},
	"ret":  {vm.RET, shapeNone},
	"movi": {vm.MOVI, shapeRaImm},
	"li":   {vm.MOVI, shapeRaImm},
	"lea":  {vm.LEA, shapeRaImm},
	"mov":  {vm.MOV, shapeRaRb},
	"not":  {vm.NOT, shapeRaRb},
	"neg":  {vm.NEG, shapeRaRb},
	"add":  {vm.ADD, shapeRaRbRc},
	"sub":  {vm.SUB, shapeRaRbRc},
	"mul":  {vm.MUL, shapeRaRbRc},
	"div":  {vm.DIV, shapeRaRbRc},
	"mod":  {vm.MOD, shapeRaRbRc},
	"and":  {vm.AND, shapeRaRbRc},
	"or":   {vm.OR, shapeRaRbRc},
	"xor":  {vm.XOR, shapeRaRbRc},
	"shl":  {vm.SHL, shapeRaRbRc},
	"shr":  {vm.SHR, shapeRaRbRc},
	"sar":  {vm.SAR, shapeRaRbRc},
	"slt":  {vm.SLT, shapeRaRbRc},
	"sltu": {vm.SLTU, shapeRaRbRc},
	"seq":  {vm.SEQ, shapeRaRbRc},
	"addi": {vm.ADDI, shapeRaRbImm},
	"muli": {vm.MULI, shapeRaRbImm},

	"jmp":    {vm.JMP, shapeJump},
	"jmpr":   {vm.JMPR, shapeRa},
	"beq":    {vm.BEQ, shapeBranch},
	"bne":    {vm.BNE, shapeBranch},
	"blt":    {vm.BLT, shapeBranch},
	"bge":    {vm.BGE, shapeBranch},
	"bltu":   {vm.BLTU, shapeBranch},
	"call":   {vm.CALL, shapeCallAbs},
	"callr":  {vm.CALLR, shapeRa},
	"callpc": {vm.CALLPC, shapeCallPC},

	"ld":    {vm.LD, shapeLoad},
	"ld8":   {vm.LD8, shapeLoad},
	"st":    {vm.ST, shapeStore},
	"st8":   {vm.ST8, shapeStore},
	"ldpc":  {vm.LDPC, shapeRaImm},
	"leapc": {vm.LEAPC, shapePCRef},
	"ldg":   {vm.LDPC, shapeGot},

	"push": {vm.PUSH, shapeRa},
	"pop":  {vm.POP, shapeRa},
	"sys":  {vm.SYS, shapeImm},
}

// instruction assembles one instruction statement.
func (a *assembler) instruction(line string, lineno int, sizing bool) error {
	if a.section != obj.SecText {
		return a.errf(lineno, "instruction outside .text")
	}
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	spec, ok := instTable[strings.ToLower(mnem)]
	if !ok {
		return a.errf(lineno, "unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)
	in := vm.Inst{Op: spec.op}

	// In the sizing pass we only need the length, which is constant.
	if sizing {
		if err := a.checkArity(spec.shape, ops, lineno); err != nil {
			return err
		}
		a.text = append(a.text, make([]byte, vm.InstSize)...)
		return nil
	}

	instOff := a.curOffset()
	immSite := instOff + vm.ImmOffset

	reg := func(i int) (uint8, error) {
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, a.errf(lineno, "bad register %q", ops[i])
		}
		return r, nil
	}
	var err error
	switch spec.shape {
	case shapeNone:
	case shapeRa:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
	case shapeRaRb:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		if in.Rb, err = reg(1); err != nil {
			return err
		}
	case shapeRaRbRc:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		if in.Rb, err = reg(1); err != nil {
			return err
		}
		if in.Rc, err = reg(2); err != nil {
			return err
		}
	case shapeRaImm:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		if sym, add, ok := parseSymRef(ops[1]); ok {
			a.lookup(sym)
			a.relocs = append(a.relocs, obj.Reloc{
				Section: obj.SecText, Offset: immSite,
				Symbol: sym, Kind: obj.RelAbs64, Addend: add,
			})
		} else if v, ok := parseInt(ops[1]); ok {
			in.Imm = uint64(v)
		} else {
			return a.errf(lineno, "bad immediate %q", ops[1])
		}
	case shapeRaRbImm:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		if in.Rb, err = reg(1); err != nil {
			return err
		}
		v, ok := parseInt(ops[2])
		if !ok {
			return a.errf(lineno, "bad immediate %q", ops[2])
		}
		in.Imm = uint64(v)
	case shapeImm:
		v, ok := parseInt(ops[0])
		if !ok {
			return a.errf(lineno, "bad immediate %q", ops[0])
		}
		in.Imm = uint64(v)
	case shapeBranch:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		if in.Rb, err = reg(1); err != nil {
			return err
		}
		off, err := a.localTarget(ops[2], instOff, lineno)
		if err != nil {
			return err
		}
		in.Imm = uint64(off)
	case shapeJump:
		off, err := a.localTarget(ops[0], instOff, lineno)
		if err != nil {
			return err
		}
		in.Imm = uint64(off)
	case shapeCallAbs:
		sym := ops[0]
		a.lookup(sym)
		a.relocs = append(a.relocs, obj.Reloc{
			Section: obj.SecText, Offset: immSite,
			Symbol: sym, Kind: obj.RelAbs64,
		})
	case shapeCallPC:
		sym := ops[0]
		s := a.lookup(sym)
		if s.defined && s.section == obj.SecText {
			// Same-object target: resolve at assembly time, no reloc.
			in.Imm = uint64(s.offset - instOff)
		} else {
			a.relocs = append(a.relocs, obj.Reloc{
				Section: obj.SecText, Offset: immSite,
				Symbol: sym, Kind: obj.RelPC64,
			})
		}
	case shapePCRef:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		sym, add, ok := parseSymRef(ops[1])
		if !ok {
			return a.errf(lineno, "leapc requires =sym operand, got %q", ops[1])
		}
		a.lookup(sym)
		a.relocs = append(a.relocs, obj.Reloc{
			Section: obj.SecText, Offset: immSite,
			Symbol: sym, Kind: obj.RelPC64, Addend: add,
		})
	case shapeGot:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		if !strings.HasPrefix(ops[1], "@") {
			return a.errf(lineno, "ldg requires @sym operand, got %q", ops[1])
		}
		sym := ops[1][1:]
		a.lookup(sym)
		a.relocs = append(a.relocs, obj.Reloc{
			Section: obj.SecText, Offset: immSite,
			Symbol: sym, Kind: obj.RelGotSlot,
		})
	case shapeLoad:
		if in.Ra, err = reg(0); err != nil {
			return err
		}
		rb, off, ok := parseMem(ops[1])
		if !ok {
			return a.errf(lineno, "bad memory operand %q", ops[1])
		}
		in.Rb, in.Imm = rb, uint64(off)
	case shapeStore:
		rb, off, ok := parseMem(ops[0])
		if !ok {
			return a.errf(lineno, "bad memory operand %q", ops[0])
		}
		if in.Ra, err = reg(1); err != nil {
			return err
		}
		in.Rb, in.Imm = rb, uint64(off)
	}
	a.text = in.Encode(a.text)
	return nil
}

// localTarget resolves a branch label, which must be defined in this
// object's text section (pass 1 collected all labels).  Returns the
// pc-relative displacement.
func (a *assembler) localTarget(label string, instOff uint64, lineno int) (int64, error) {
	s, ok := a.syms[label]
	if !ok || !s.defined {
		return 0, a.errf(lineno, "branch target %q not defined in this object", label)
	}
	if s.section != obj.SecText {
		return 0, a.errf(lineno, "branch target %q not in .text", label)
	}
	return int64(s.offset) - int64(instOff), nil
}

func (a *assembler) checkArity(shape opShape, ops []string, lineno int) error {
	want := map[opShape]int{
		shapeNone: 0, shapeRa: 1, shapeRaRb: 2, shapeRaRbRc: 3,
		shapeRaImm: 2, shapeRaRbImm: 3, shapeImm: 1, shapeBranch: 3,
		shapeJump: 1, shapeCallAbs: 1, shapeCallPC: 1, shapeLoad: 2,
		shapeStore: 2, shapeGot: 2, shapePCRef: 2,
	}[shape]
	if len(ops) != want {
		return a.errf(lineno, "want %d operands, got %d", want, len(ops))
	}
	return nil
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
