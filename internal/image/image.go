// Package image defines linked, mappable executable images and the
// on-disk executable file format used by the simulated OS.
//
// An Image is the output of the link step: a set of placed segments
// plus an entry point and a bound symbol table.  The OMOS server
// caches Images (materialized into shared physical frames); the
// baseline path serializes them into ExecFiles that the native exec
// code must parse on every invocation — precisely the work the paper's
// server avoids by caching.
package image

import (
	"fmt"
	"sort"
)

// Perm is a segment permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// String renders e.g. "r-x".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Segment is a contiguous placed region.  Bytes beyond len(Data) up to
// MemSize are zero-initialized (bss).
type Segment struct {
	Name    string
	Addr    uint64
	Data    []byte
	MemSize uint64 // total size; >= len(Data)
	Perm    Perm
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Addr + s.MemSize }

// Image is a fully linked, mappable program or library.
type Image struct {
	Name     string
	Entry    uint64
	Segments []Segment
	// Syms maps bound global symbol names to absolute addresses.  The
	// server uses it to answer dynamic-load symbol queries and to
	// build partial-image hash tables.
	Syms map[string]uint64
}

// Validate checks segment sanity: MemSize covers Data, no overlaps.
func (im *Image) Validate() error {
	segs := make([]Segment, len(im.Segments))
	copy(segs, im.Segments)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	for i := range segs {
		s := &segs[i]
		if uint64(len(s.Data)) > s.MemSize {
			return fmt.Errorf("image %s: segment %s: data %d > memsize %d",
				im.Name, s.Name, len(s.Data), s.MemSize)
		}
		if s.Addr+s.MemSize < s.Addr {
			return fmt.Errorf("image %s: segment %s wraps address space", im.Name, s.Name)
		}
		if i > 0 && segs[i-1].End() > s.Addr {
			return fmt.Errorf("image %s: segments %s and %s overlap",
				im.Name, segs[i-1].Name, s.Name)
		}
	}
	return nil
}

// FindSegment returns the segment containing addr, or nil.
func (im *Image) FindSegment(addr uint64) *Segment {
	for i := range im.Segments {
		s := &im.Segments[i]
		if addr >= s.Addr && addr < s.End() {
			return s
		}
	}
	return nil
}

// DynRelocKind classifies a load-time relocation in an ExecFile.
type DynRelocKind uint8

// Dynamic relocation kinds.
const (
	// DynAbs: look up Symbol in the link namespace (this file's own
	// exports plus all needed libraries') and store its address plus
	// Addend at Addr.
	DynAbs DynRelocKind = iota
	// DynRelative: store loadBase + Addend at Addr (no symbol lookup).
	// Used to initialize GOT entries for module-internal symbols when
	// the module may be rebased.
	DynRelative
)

// DynReloc is a relocation the dynamic linker applies at load time.
// Addr is a virtual address within a writable segment (relative to the
// file's preferred base; rebased by the load delta).
type DynReloc struct {
	Addr   uint64
	Kind   DynRelocKind
	Symbol string
	Addend int64
}

// LazySlot describes a GOT slot subject to lazy function binding: the
// dynamic linker initializes the slot to the lazy resolver and patches
// it with Symbol's address on first call.
type LazySlot struct {
	Addr   uint64 // slot virtual address (preferred-base relative)
	Symbol string
	Index  uint32 // index loaded into RegIdx by the PLT entry
}

// Export is an exported symbol of a shared object.
type Export struct {
	Name string
	Addr uint64 // preferred-base relative
}

// ExecFile is the on-disk executable or shared library consumed by
// the native exec path and the baseline dynamic linker.
type ExecFile struct {
	Image
	// Shared marks a shared library (mapped by the dynamic linker, not
	// executed directly).
	Shared bool
	// PIC marks the file as position independent: it may be loaded at
	// any base; all dynamic reloc/slot/export addresses are rebased by
	// the load delta.
	PIC bool
	// Needed lists library file paths this file depends on, in link
	// order.
	Needed []string
	// DynRelocs are eager load-time relocations (data references).
	DynRelocs []DynReloc
	// LazySlots are lazily-bound function GOT slots.
	LazySlots []LazySlot
	// Exports is the dynamic symbol table.
	Exports []Export
}

// RecordCount returns the number of structural records a loader must
// parse; the osim cost model charges native exec proportionally.
func (f *ExecFile) RecordCount() int {
	n := 2 + len(f.Segments) + len(f.Needed) + len(f.DynRelocs) + len(f.LazySlots) + len(f.Exports)
	return n
}

// TotalFileBytes returns the stored byte size of all segments; the
// cost model uses it to price writing the file out at link time.
func (f *ExecFile) TotalFileBytes() int {
	n := 0
	for i := range f.Segments {
		n += len(f.Segments[i].Data)
	}
	return n
}

// FindExport returns the address of a dynamic symbol and whether it
// exists, adjusted by delta (the load-base displacement).
func (f *ExecFile) FindExport(name string, delta uint64) (uint64, bool) {
	for i := range f.Exports {
		if f.Exports[i].Name == name {
			return f.Exports[i].Addr + delta, true
		}
	}
	return 0, false
}
