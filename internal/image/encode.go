package image

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// ExecMagic identifies an executable/shared-object file.
var ExecMagic = [4]byte{'E', 'X', 'E', '1'}

// EncodeExec serializes an ExecFile for storage in the simulated
// filesystem.  Native exec and the baseline dynamic linker decode this
// on every program invocation; the OMOS integrated path does not.
func EncodeExec(f *ExecFile) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var w bytes.Buffer
	w.Write(ExecMagic[:])
	wstr(&w, f.Name)
	w64(&w, f.Entry)
	flags := byte(0)
	if f.Shared {
		flags |= 1
	}
	if f.PIC {
		flags |= 2
	}
	w.WriteByte(flags)
	w32(&w, uint32(len(f.Segments)))
	for i := range f.Segments {
		s := &f.Segments[i]
		wstr(&w, s.Name)
		w64(&w, s.Addr)
		w64(&w, s.MemSize)
		w.WriteByte(byte(s.Perm))
		w32(&w, uint32(len(s.Data)))
		w.Write(s.Data)
	}
	w32(&w, uint32(len(f.Needed)))
	for _, n := range f.Needed {
		wstr(&w, n)
	}
	w32(&w, uint32(len(f.DynRelocs)))
	for i := range f.DynRelocs {
		r := &f.DynRelocs[i]
		w64(&w, r.Addr)
		w.WriteByte(byte(r.Kind))
		wstr(&w, r.Symbol)
		w64(&w, uint64(r.Addend))
	}
	w32(&w, uint32(len(f.LazySlots)))
	for i := range f.LazySlots {
		s := &f.LazySlots[i]
		w64(&w, s.Addr)
		wstr(&w, s.Symbol)
		w32(&w, s.Index)
	}
	w32(&w, uint32(len(f.Exports)))
	for i := range f.Exports {
		wstr(&w, f.Exports[i].Name)
		w64(&w, f.Exports[i].Addr)
	}
	w32(&w, uint32(len(f.Syms)))
	for _, name := range sortedKeys(f.Syms) {
		wstr(&w, name)
		w64(&w, f.Syms[name])
	}
	return w.Bytes(), nil
}

// DecodeExec parses an executable file.
func DecodeExec(b []byte) (*ExecFile, error) {
	r := &rd{b: b}
	var magic [4]byte
	r.bytes(magic[:])
	if magic != ExecMagic {
		return nil, fmt.Errorf("image: bad exec magic %q", magic[:])
	}
	f := &ExecFile{}
	f.Name = r.str()
	f.Entry = r.u64()
	flags := r.u8()
	f.Shared = flags&1 != 0
	f.PIC = flags&2 != 0
	nseg := r.u32()
	r.checkCount(nseg)
	for i := uint32(0); i < nseg && r.err == nil; i++ {
		var s Segment
		s.Name = r.str()
		s.Addr = r.u64()
		s.MemSize = r.u64()
		s.Perm = Perm(r.u8())
		s.Data = r.blob()
		f.Segments = append(f.Segments, s)
	}
	nneed := r.u32()
	r.checkCount(nneed)
	for i := uint32(0); i < nneed && r.err == nil; i++ {
		f.Needed = append(f.Needed, r.str())
	}
	nrel := r.u32()
	r.checkCount(nrel)
	for i := uint32(0); i < nrel && r.err == nil; i++ {
		var dr DynReloc
		dr.Addr = r.u64()
		dr.Kind = DynRelocKind(r.u8())
		dr.Symbol = r.str()
		dr.Addend = int64(r.u64())
		f.DynRelocs = append(f.DynRelocs, dr)
	}
	nlazy := r.u32()
	r.checkCount(nlazy)
	for i := uint32(0); i < nlazy && r.err == nil; i++ {
		var ls LazySlot
		ls.Addr = r.u64()
		ls.Symbol = r.str()
		ls.Index = r.u32()
		f.LazySlots = append(f.LazySlots, ls)
	}
	nexp := r.u32()
	r.checkCount(nexp)
	for i := uint32(0); i < nexp && r.err == nil; i++ {
		var e Export
		e.Name = r.str()
		e.Addr = r.u64()
		f.Exports = append(f.Exports, e)
	}
	nsym := r.u32()
	r.checkCount(nsym)
	if nsym > 0 && r.err == nil {
		f.Syms = make(map[string]uint64, nsym)
	}
	for i := uint32(0); i < nsym && r.err == nil; i++ {
		name := r.str()
		f.Syms[name] = r.u64()
	}
	if r.err != nil {
		return nil, fmt.Errorf("image: decode exec: %w", r.err)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("image: %d trailing bytes", len(b)-r.off)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

func sortedKeys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func w32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func w64(w *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func wstr(w *bytes.Buffer, s string) {
	w32(w, uint32(len(s)))
	w.WriteString(s)
}

type rd struct {
	b   []byte
	off int
	err error
}

func (r *rd) bytes(p []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(p) > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return
	}
	copy(p, r.b[r.off:])
	r.off += len(p)
}

func (r *rd) u8() uint8 {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *rd) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *rd) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *rd) blob() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int(n) > len(r.b)-r.off {
		r.err = fmt.Errorf("implausible length %d", n)
		return nil
	}
	p := make([]byte, n)
	r.bytes(p)
	return p
}

func (r *rd) str() string { return string(r.blob()) }

func (r *rd) checkCount(n uint32) {
	// Every record costs at least 8 encoded bytes; anything claiming
	// more records than the remaining bytes could hold is hostile.
	if r.err == nil && int(n) > (len(r.b)-r.off)/8+1 {
		r.err = fmt.Errorf("implausible record count %d", n)
	}
}
