package image

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleExec(r *rand.Rand) *ExecFile {
	f := &ExecFile{Image: Image{
		Name:  "prog",
		Entry: 0x1000,
	}}
	addr := uint64(0x1000)
	for i := 0; i < 1+r.Intn(3); i++ {
		n := 1 + r.Intn(64)
		data := make([]byte, n)
		r.Read(data)
		seg := Segment{
			Name:    []string{"text", "data", "extra"}[i%3],
			Addr:    addr,
			Data:    data,
			MemSize: uint64(n + r.Intn(32)),
			Perm:    Perm(1 + r.Intn(7)),
		}
		f.Segments = append(f.Segments, seg)
		addr += seg.MemSize + uint64(r.Intn(4096))
	}
	f.Shared = r.Intn(2) == 0
	f.PIC = r.Intn(2) == 0
	if r.Intn(2) == 0 {
		f.Needed = []string{"/lib/a.so", "/lib/b.so"}
	}
	for i := 0; i < r.Intn(4); i++ {
		f.DynRelocs = append(f.DynRelocs, DynReloc{
			Addr: uint64(r.Intn(1 << 20)), Kind: DynRelocKind(r.Intn(2)),
			Symbol: "s", Addend: int64(r.Intn(100)) - 50,
		})
	}
	for i := 0; i < r.Intn(4); i++ {
		f.LazySlots = append(f.LazySlots, LazySlot{Addr: uint64(i * 8), Symbol: "f", Index: uint32(i)})
	}
	for i := 0; i < r.Intn(4); i++ {
		f.Exports = append(f.Exports, Export{Name: string(rune('a' + i)), Addr: uint64(i * 16)})
	}
	if r.Intn(2) == 0 {
		f.Syms = map[string]uint64{"main": 0x1000, "z": 0x2000}
	}
	return f
}

func TestExecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := sampleExec(r)
		enc, err := EncodeExec(in)
		if err != nil {
			return true // generator may produce invalid perms/overlaps; skip
		}
		out, err := DecodeExec(enc)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(normalizeExec(in), normalizeExec(out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func normalizeExec(f *ExecFile) *ExecFile {
	c := *f
	if len(c.Needed) == 0 {
		c.Needed = nil
	}
	if len(c.DynRelocs) == 0 {
		c.DynRelocs = nil
	}
	if len(c.LazySlots) == 0 {
		c.LazySlots = nil
	}
	if len(c.Exports) == 0 {
		c.Exports = nil
	}
	if len(c.Syms) == 0 {
		c.Syms = nil
	}
	for i := range c.Segments {
		if len(c.Segments[i].Data) == 0 {
			c.Segments[i].Data = nil
		}
	}
	return &c
}

func TestValidateOverlap(t *testing.T) {
	im := &Image{Name: "x", Segments: []Segment{
		{Name: "a", Addr: 0x1000, MemSize: 0x2000},
		{Name: "b", Addr: 0x2000, MemSize: 0x1000},
	}}
	if err := im.Validate(); err == nil {
		t.Fatal("overlap accepted")
	}
	im.Segments[1].Addr = 0x3000
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	// Data longer than MemSize.
	im2 := &Image{Name: "y", Segments: []Segment{
		{Name: "a", Addr: 0, Data: make([]byte, 10), MemSize: 4},
	}}
	if err := im2.Validate(); err == nil {
		t.Fatal("data > memsize accepted")
	}
}

func TestFindSegmentAndExports(t *testing.T) {
	f := &ExecFile{Image: Image{Name: "z", Segments: []Segment{
		{Name: "text", Addr: 0x1000, MemSize: 0x1000, Perm: PermR | PermX},
	}},
		Exports: []Export{{Name: "f", Addr: 0x1100}},
	}
	if s := f.FindSegment(0x1800); s == nil || s.Name != "text" {
		t.Fatal("FindSegment missed")
	}
	if s := f.FindSegment(0x2000); s != nil {
		t.Fatal("FindSegment phantom")
	}
	if a, ok := f.FindExport("f", 0x10); !ok || a != 0x1110 {
		t.Fatalf("FindExport = %#x %v", a, ok)
	}
	if _, ok := f.FindExport("g", 0); ok {
		t.Fatal("phantom export")
	}
}

func TestPermString(t *testing.T) {
	if (PermR | PermX).String() != "r-x" {
		t.Fatalf("perm = %s", PermR|PermX)
	}
	if Perm(0).String() != "---" {
		t.Fatal("zero perm")
	}
}

func TestDecodeExecCorruption(t *testing.T) {
	f := &ExecFile{Image: Image{Name: "c", Entry: 0,
		Segments: []Segment{{Name: "t", Addr: 0x1000, Data: []byte{1, 2}, MemSize: 2, Perm: PermR}}}}
	enc, err := EncodeExec(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeExec(enc[:i]); err == nil {
			t.Fatalf("prefix %d accepted", i)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = '?'
	if _, err := DecodeExec(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}
