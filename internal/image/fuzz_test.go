package image

import "testing"

// FuzzDecodeExec: arbitrary bytes must never panic the executable
// parser, and accepted files must re-encode.
func FuzzDecodeExec(f *testing.F) {
	ef := &ExecFile{Image: Image{
		Name:  "seed",
		Entry: 0x1000,
		Segments: []Segment{
			{Name: "text", Addr: 0x1000, Data: []byte{1, 2, 3}, MemSize: 4096, Perm: PermR | PermX},
		},
	},
		Needed:    []string{"/lib/x.so"},
		DynRelocs: []DynReloc{{Addr: 8, Kind: DynAbs, Symbol: "s"}},
		LazySlots: []LazySlot{{Addr: 16, Symbol: "f", Index: 0}},
		Exports:   []Export{{Name: "e", Addr: 0x1000}},
	}
	enc, _ := EncodeExec(ef)
	f.Add(enc)
	f.Add([]byte("EXE1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeExec(data)
		if err != nil {
			return
		}
		if _, err := EncodeExec(dec); err != nil {
			t.Fatalf("decoded exec does not re-encode: %v", err)
		}
	})
}
