package mesh

import (
	"fmt"
	"testing"
)

// TestRingDistribution: virtual nodes keep shard sizes useful — every
// member of a small fleet owns a meaningful share of the keyspace.
func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("content-key-%d", i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 {
			t.Fatalf("member %s owns %.1f%% of the keyspace (counts %v)", m, 100*share, counts)
		}
	}
}

// TestRingRemovalStability: removing a member only reassigns the keys
// it owned — everything else keeps its owner, which is the property
// that bounds rebalance traffic to the departed shard.
func TestRingRemovalStability(t *testing.T) {
	r := NewRing(0)
	for _, m := range []string{"a:1", "b:1", "c:1"} {
		r.Add(m)
	}
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	r.Remove("c:1")
	for k, owner := range before {
		if owner == "c:1" {
			continue
		}
		if got := r.Owner(k); got != owner {
			t.Fatalf("key %s moved %s -> %s though its owner stayed on the ring", k, owner, got)
		}
	}
}

// TestRingBasics: membership bookkeeping and the empty ring.
func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	if r.Owner("anything") != "" {
		t.Fatal("empty ring owns a key")
	}
	r.Add("a:1")
	r.Add("a:1") // idempotent
	if !r.Has("a:1") || r.Has("b:1") || r.Size() != 1 {
		t.Fatalf("membership: %v", r.Members())
	}
	if got := r.Owner("k"); got != "a:1" {
		t.Fatalf("single-member ring owner = %q", got)
	}
	r.Add("b:1")
	if got := r.Members(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("members = %v", got)
	}
	r.Remove("a:1")
	r.Remove("a:1") // idempotent
	if r.Has("a:1") || r.Size() != 1 {
		t.Fatalf("after removal: %v", r.Members())
	}
	if got := r.Owner("k"); got != "b:1" {
		t.Fatalf("owner after removal = %q", got)
	}
}
