// Package mesh federates omos daemons into a consistent-hash sharded
// image store.  Each content key (the placement-independent identity a
// build is cached under) has exactly one ring owner; non-owning daemons
// consult the owner on a placement miss and either rebase a local
// variant with the owner's metadata or stream the owner's bytes,
// so the fleet converges on one build per content key.
package mesh

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultReplicas is the number of virtual nodes each member projects
// onto the ring.  Enough to keep shard sizes within a few percent of
// each other for small fleets without making Owner lookups expensive.
const defaultReplicas = 64

type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes.  The zero value is
// unusable; construct with NewRing.  Ring is not safe for concurrent
// mutation; Node guards it with its own mutex.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (defaultReplicas when n <= 0).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = defaultReplicas
	}
	return &Ring{replicas: n, members: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member's virtual nodes.  Adding an existing member is a
// no-op.
func (r *Ring) Add(member string) {
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		h := ringHash(member + "#" + strconv.Itoa(i))
		r.points = append(r.points, ringPoint{hash: h, member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes.  Removing an unknown member
// is a no-op.
func (r *Ring) Remove(member string) {
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the ring membership, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	_, ok := r.members[member]
	return ok
}

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}
