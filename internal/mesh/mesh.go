package mesh

// Node federates one daemon into the mesh: it owns the consistent-hash
// ring, one ipc.Client per peer (so each peer gets its own circuit
// breaker), a per-peer inbound admission gate, and the bounded hold
// area for records pushed by other daemons.  It is both sides of the
// traffic: the server.MeshHook the local server consults on placement
// misses (FetchContent/OfferContent/Owned), and the Accept* handlers
// the daemon backend dispatches inbound mesh operations to.
//
// Consistency model: records are content-addressed (the content key
// pins the bytes), so every transfer is an idempotent copy.  Fetches
// fall back to the local build path on any failure, gossip retries
// whatever a round missed, and a rebalance interrupted mid-push leaves
// both shards serving correct content — the next round resumes.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"omos/internal/fault"
	"omos/internal/ipc"
	"omos/internal/server"
	"omos/internal/store"
)

// Config tunes a mesh node.  Zero values select defaults.
type Config struct {
	// Self is this daemon's mesh address: its ring member ID and the
	// address peers dial it at.  Required.
	Self string
	// Secret is the shared mesh secret; when set, outbound connections
	// carry the HMAC hello proof and peers must be configured with the
	// same secret.
	Secret string
	// Replicas is the virtual-node count per ring member (default 64).
	Replicas int
	// PeerMaxInflight/PeerQueueDepth size the per-peer inbound
	// admission gate (defaults 8/16) — one slow or greedy peer sheds at
	// its own gate instead of starving the rest.
	PeerMaxInflight int
	PeerQueueDepth  int
	// ConnectTimeout/CallTimeout/Retries tune the per-peer clients
	// (defaults 2s / 30s / 0 — a miss must fail fast into the local
	// build path, not hang a build slot).
	ConnectTimeout time.Duration
	CallTimeout    time.Duration
	Retries        int
	// GossipInterval enables the background anti-entropy loop; zero
	// means gossip only runs on explicit GossipTick calls.
	GossipInterval time.Duration
	// HoldMax bounds how many peer-pushed records the node holds
	// (default 256; oldest evicted first).  HoldMaxBytes bounds their
	// total encoded size (default 64 MB) — records carry full image
	// segments, so a count bound alone could pin hundreds of MB.
	HoldMax      int
	HoldMaxBytes int
	// Faults arms deterministic fault injection on the mesh sites.
	Faults *fault.Set
}

func (c *Config) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.PeerMaxInflight <= 0 {
		c.PeerMaxInflight = 8
	}
	if c.PeerQueueDepth <= 0 {
		c.PeerQueueDepth = 16
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.HoldMax <= 0 {
		c.HoldMax = 256
	}
	if c.HoldMaxBytes <= 0 {
		c.HoldMaxBytes = 64 << 20
	}
}

// peer is one remote daemon: its address, a lazily dialed client
// (whose circuit breaker is therefore per-peer), and the last observed
// liveness.
type peer struct {
	addr string

	mu sync.Mutex
	c  *ipc.Client

	up atomic.Bool
}

// client returns the peer's client, dialing on first use and redialing
// transparently after failures (the ipc client redials itself).
func (p *peer) client(opts ipc.Options) (*ipc.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		return p.c, nil
	}
	c, err := ipc.DialWith(p.addr, opts)
	if err != nil {
		return nil, err
	}
	p.c = c
	return c, nil
}

func (p *peer) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		p.c.Close()
		p.c = nil
	}
}

// Node is one daemon's membership in the mesh.  Create with New (which
// installs it as the server's mesh hook), add peers, then serve.
type Node struct {
	srv    *server.Server
	cfg    Config
	faults *fault.Set

	mu        sync.Mutex
	ring      *Ring
	peers     map[string]*peer
	admits    map[string]*server.Admission
	holds     map[string][]byte
	holdSeq   []string
	holdBytes int
	// evicted remembers keys recently pushed out of the hold area for
	// capacity, so AcceptGossip declines their re-offer instead of the
	// mesh churning the same blobs over the wire every round.
	evicted map[string]time.Time
	peerGen map[string]uint64
	// memberEpoch/memberFrom version the applied ring membership: a
	// rebalance announce carries a monotonic epoch, stale or
	// conflicting announces are detected instead of silently replacing
	// the ring (see AcceptRebalance / AnnounceMembership).
	memberEpoch uint64
	memberFrom  string
	// rebalRunning/rebalPending coalesce async rebalance kicks: at
	// most one push loop runs, at most one more is queued.
	rebalRunning bool
	rebalPending bool

	served       atomic.Uint64 // inbound fetches served (found)
	gossipRounds atomic.Uint64
	gossipPushed atomic.Uint64
	rebalPushed  atomic.Uint64

	loopWG   sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once
}

// New builds a node owning only its own shard and installs it as srv's
// mesh hook.  Add peers (AddPeer / SetMembers) before traffic needs
// them; Start launches the gossip loop when Config.GossipInterval is
// set.
func New(srv *server.Server, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("mesh: config needs a Self address")
	}
	cfg.defaults()
	n := &Node{
		srv:     srv,
		cfg:     cfg,
		faults:  cfg.Faults,
		ring:    NewRing(cfg.Replicas),
		peers:   map[string]*peer{},
		admits:  map[string]*server.Admission{},
		holds:   map[string][]byte{},
		evicted: map[string]time.Time{},
		peerGen: map[string]uint64{},
		stop:    make(chan struct{}),
	}
	n.ring.Add(cfg.Self)
	srv.SetMesh(n)
	return n, nil
}

// Self returns this node's mesh address.
func (n *Node) Self() string { return n.cfg.Self }

// clientOpts is the tuning every per-peer client gets.
func (n *Node) clientOpts() ipc.Options {
	return ipc.Options{
		ConnectTimeout: n.cfg.ConnectTimeout,
		CallTimeout:    n.cfg.CallTimeout,
		Retries:        n.cfg.Retries,
		MeshSecret:     n.cfg.Secret,
	}
}

// AddPeer adds a member to the ring (idempotent).  Ownership of every
// content key hashing to the new member moves immediately; run
// Rebalance (or AnnounceMembership) to push moved content over.
func (n *Node) AddPeer(addr string) {
	if addr == "" || addr == n.cfg.Self {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ring.Add(addr)
	if _, ok := n.peers[addr]; !ok {
		n.peers[addr] = &peer{addr: addr}
	}
}

// RemovePeer drops a member from the ring and closes its client.
func (n *Node) RemovePeer(addr string) {
	if addr == n.cfg.Self {
		return
	}
	n.mu.Lock()
	n.ring.Remove(addr)
	p := n.peers[addr]
	delete(n.peers, addr)
	delete(n.admits, addr)
	delete(n.peerGen, addr)
	n.mu.Unlock()
	if p != nil {
		p.close()
	}
}

// SetMembers replaces the ring membership wholesale (self is always a
// member, listed or not).
func (n *Node) SetMembers(members []string) {
	n.mu.Lock()
	closing := n.setMembersLocked(members)
	n.mu.Unlock()
	for _, p := range closing {
		p.close()
	}
}

// setMembersLocked is SetMembers under n.mu: it returns the peers to
// close once the lock is released.
func (n *Node) setMembersLocked(members []string) []*peer {
	want := map[string]bool{n.cfg.Self: true}
	for _, m := range members {
		if m != "" {
			want[m] = true
		}
	}
	var closing []*peer
	for _, m := range n.ring.Members() {
		if !want[m] {
			n.ring.Remove(m)
			if p := n.peers[m]; p != nil {
				closing = append(closing, p)
			}
			delete(n.peers, m)
			delete(n.admits, m)
			delete(n.peerGen, m)
		}
	}
	for m := range want {
		if n.ring.Has(m) {
			continue
		}
		n.ring.Add(m)
		if m != n.cfg.Self {
			n.peers[m] = &peer{addr: m}
		}
	}
	return closing
}

// Members returns the current ring membership, sorted.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Members()
}

// ownerPeer resolves a content key to its owning peer (nil when this
// node owns it or the owner is not a known peer).
func (n *Node) ownerPeer(ckey string) (string, *peer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	owner := n.ring.Owner(ckey)
	return owner, n.peers[owner]
}

// peerList snapshots the peers for iteration outside the lock.
func (n *Node) peerList() []*peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// Owned implements server.MeshHook.
func (n *Node) Owned(ckey string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Owner(ckey) == n.cfg.Self
}

// FetchContent implements server.MeshHook: consult the content key's
// ring owner.  Every failure mode — owner down, shedding (the per-peer
// breaker fails fast while open), faulted — surfaces as an error the
// server answers with its local build path.
func (n *Node) FetchContent(ckey string, textBase, dataBase uint64, haveBytes bool) (*server.MeshReply, error) {
	if err := n.faults.Fire(fault.SiteMeshPeerFetch); err != nil {
		return nil, err
	}
	owner, p := n.ownerPeer(ckey)
	if p == nil {
		return nil, fmt.Errorf("mesh: owner %s of %s is not a known peer", owner, ckey)
	}
	c, err := p.client(n.clientOpts())
	if err != nil {
		p.up.Store(false)
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	info, blob, err := c.MeshFetch(ctx, &ipc.MeshReq{
		From: n.cfg.Self, CKey: ckey,
		TextBase: textBase, DataBase: dataBase,
		HaveBytes: haveBytes,
	})
	if err != nil {
		p.up.Store(false)
		return nil, err
	}
	p.up.Store(true)
	if info == nil || !info.Found {
		return &server.MeshReply{}, nil
	}
	return &server.MeshReply{
		Found:    true,
		MetaOnly: info.MetaOnly,
		Meta: server.MeshMeta{
			AbsPatches: info.AbsPatches, RelPatches: info.RelPatches, Syms: info.Syms,
			TextSize: info.TextSize, DataSize: info.DataSize,
		},
		Blob: blob,
	}, nil
}

// OfferContent implements server.MeshHook: push a locally built record
// to its ring owner.  Best-effort — on failure the record stays in the
// local variants index and the next gossip round's digest re-offers it.
func (n *Node) OfferContent(ckey string, blob []byte) {
	_, p := n.ownerPeer(ckey)
	if p == nil {
		return
	}
	n.pushRecord(p, ckey, blob)
}

// pushRecord delivers one encoded record to a peer via OpMeshPut.
func (n *Node) pushRecord(p *peer, ckey string, blob []byte) bool {
	c, err := p.client(n.clientOpts())
	if err != nil {
		p.up.Store(false)
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
	defer cancel()
	_, err = c.CallCtx(ctx, &ipc.Request{Op: ipc.OpMeshPut, Mesh: &ipc.MeshReq{
		From: n.cfg.Self, CKey: ckey, Blob: blob,
	}})
	if err != nil {
		p.up.Store(false)
		return false
	}
	p.up.Store(true)
	return true
}

// admitPeer passes one inbound mesh operation through the sender's
// admission gate; the returned *server.OverloadError (when shed)
// carries the retry-after hint the wire maps to an overload response,
// which trips the requester's per-peer breaker.
func (n *Node) admitPeer(from string) (func(), error) {
	if from == "" {
		from = "(unknown)"
	}
	n.mu.Lock()
	a := n.admits[from]
	if a == nil {
		a = server.NewAdmission(server.AdmissionConfig{
			MaxInflight: n.cfg.PeerMaxInflight,
			QueueDepth:  n.cfg.PeerQueueDepth,
		})
		n.admits[from] = a
	}
	n.mu.Unlock()
	return a.Acquire(context.Background())
}

// holdEvictTTL is how long a capacity-evicted key stays declined in
// gossip replies: long enough that successive anti-entropy rounds stop
// re-streaming blobs the hold area cannot keep, short enough that the
// key becomes acceptable again once pressure has likely passed.
const holdEvictTTL = time.Minute

// hold parks a peer-pushed record, bounded by HoldMax records and
// HoldMaxBytes total encoded size (oldest out first).  Held records
// never enter the server's persistent store — their placements belong
// to another daemon's solver — but they are served to fetching peers
// and moved on by rebalance.  Keys evicted for capacity are remembered
// so gossip stops re-requesting them (see AcceptGossip).
func (n *Node) hold(ckey string, blob []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(blob) > n.cfg.HoldMaxBytes {
		// Larger than the whole budget: never fits, decline re-offers.
		n.evicted[ckey] = time.Now()
		return
	}
	if old, ok := n.holds[ckey]; ok {
		n.holdBytes -= len(old)
	} else {
		n.holdSeq = append(n.holdSeq, ckey)
	}
	n.holds[ckey] = blob
	n.holdBytes += len(blob)
	// An explicit push overrides a standing decline.
	delete(n.evicted, ckey)
	for len(n.holdSeq) > n.cfg.HoldMax || n.holdBytes > n.cfg.HoldMaxBytes {
		old := n.holdSeq[0]
		n.holdSeq = n.holdSeq[1:]
		n.holdBytes -= len(n.holds[old])
		delete(n.holds, old)
		n.evicted[old] = time.Now()
	}
}

func (n *Node) heldBlob(ckey string) []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.holds[ckey]
}

func (n *Node) dropHold(ckey string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	blob, ok := n.holds[ckey]
	if !ok {
		return
	}
	n.holdBytes -= len(blob)
	delete(n.holds, ckey)
	for i, k := range n.holdSeq {
		if k == ckey {
			n.holdSeq = append(n.holdSeq[:i], n.holdSeq[i+1:]...)
			break
		}
	}
}

// declineEvicted reports whether a gossip offer of ckey should be
// declined because the hold area evicted it for capacity recently; it
// also prunes expired decline entries in passing.
func (n *Node) declineEvicted(ckey string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	for k, at := range n.evicted {
		if now.Sub(at) > holdEvictTTL {
			delete(n.evicted, k)
		}
	}
	_, ok := n.evicted[ckey]
	return ok
}

// HeldKeys lists the content keys parked in the hold area, oldest
// first.
func (n *Node) HeldKeys() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.holdSeq...)
}

// metaFromRecord summarizes a held record's link-time invariants
// without installing it.
func metaFromRecord(rec *store.Record) server.MeshMeta {
	return server.MeshMeta{
		AbsPatches: len(rec.AbsPatches),
		RelPatches: len(rec.RelPatches),
		Syms:       len(rec.Syms),
		TextSize:   rec.ResTextSize,
		DataSize:   rec.ResDataSize,
	}
}

func infoFromMeta(m server.MeshMeta) *ipc.MeshInfo {
	return &ipc.MeshInfo{
		Found:      true,
		AbsPatches: m.AbsPatches, RelPatches: m.RelPatches, Syms: m.Syms,
		TextSize: m.TextSize, DataSize: m.DataSize,
	}
}

// AcceptFetch serves an inbound OpMeshFetch: a metadata-only reply when
// the requester holds bytes to rebase, the encoded record otherwise —
// from the live variants index first, the hold area second.  Never
// instantiates anything, so peer fetches cannot recurse across the
// mesh.
func (n *Node) AcceptFetch(req *ipc.MeshReq) (*ipc.MeshInfo, []byte, error) {
	release, err := n.admitPeer(req.From)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	// Fired inside the admission slot: a delay fault models a slow
	// owner, whose backed-up slot sheds the peer's next fetches — the
	// overload that trips the requester's per-peer breaker.
	if err := n.faults.Fire(fault.SiteMeshPeerFetch); err != nil {
		return nil, nil, err
	}
	if blob, meta, ok := n.srv.ExportContent(req.CKey, req.HaveBytes); ok {
		n.served.Add(1)
		info := infoFromMeta(meta)
		if req.HaveBytes {
			info.MetaOnly = true
			return info, nil, nil
		}
		info.Size = uint64(len(blob))
		return info, blob, nil
	}
	if blob := n.heldBlob(req.CKey); blob != nil {
		if rec, err := store.Decode(blob); err == nil && rec.ContentKey == req.CKey {
			n.served.Add(1)
			info := infoFromMeta(metaFromRecord(rec))
			if req.HaveBytes {
				info.MetaOnly = true
				return info, nil, nil
			}
			info.Size = uint64(len(blob))
			return info, blob, nil
		}
		// Damaged or mislabeled hold: drop it and report a miss.
		n.dropHold(req.CKey)
	}
	return &ipc.MeshInfo{Found: false}, nil, nil
}

// AcceptPut takes a record pushed by a peer (an offer, a gossip push,
// or a rebalance move) into the hold area.  Records this daemon
// already has a live variant of are dropped — the variants index
// serves fetches before holds do.
func (n *Node) AcceptPut(req *ipc.MeshReq) error {
	release, err := n.admitPeer(req.From)
	if err != nil {
		return err
	}
	defer release()
	rec, err := store.Decode(req.Blob)
	if err != nil {
		return fmt.Errorf("mesh: put of %s: %w", req.CKey, err)
	}
	if rec.ContentKey == "" || (req.CKey != "" && rec.ContentKey != req.CKey) {
		return fmt.Errorf("mesh: put content key mismatch: labeled %s, record %s", req.CKey, rec.ContentKey)
	}
	if n.srv.HasVariant(rec.ContentKey) {
		return nil
	}
	n.hold(rec.ContentKey, req.Blob)
	return nil
}

// AcceptGossip answers a peer's anti-entropy digest: the reply carries
// this daemon's namespace generation and which of the offered content
// keys it wants pushed.  Keys the hold area evicted for capacity
// recently are declined — re-requesting them every round would churn
// the same blobs over the wire forever.
func (n *Node) AcceptGossip(req *ipc.MeshReq) (*ipc.MeshInfo, error) {
	n.mu.Lock()
	n.peerGen[req.From] = req.Gen
	n.mu.Unlock()
	info := &ipc.MeshInfo{Gen: n.srv.NamespaceGen()}
	for _, k := range req.Keys {
		if !n.srv.HasVariant(k) && n.heldBlob(k) == nil && !n.declineEvicted(k) {
			info.Want = append(info.Want, k)
		}
	}
	return info, nil
}

// sameMembers reports whether two membership lists name the same set.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// applyAnnounce applies an epoch-versioned membership announcement
// under one lock.  Newer epochs replace the ring wholesale (that is
// what lets a leave propagate); a stale epoch is rejected untouched;
// an equal epoch from a different announcer is a concurrent announce —
// identical lists are idempotent, divergent lists are merged (union)
// so no live member is silently dropped, and applied=false tells the
// announcer to pick the union up and re-announce it.  Epoch 0 (a
// legacy announce) always applies.
func (n *Node) applyAnnounce(members []string, epoch uint64, from string) (applied, changed bool) {
	n.mu.Lock()
	cur := n.ring.Members()
	apply := members
	switch {
	case epoch == 0 || epoch > n.memberEpoch:
		applied = true
	case epoch < n.memberEpoch:
		// Stale: an older announce lost the race; the reply carries
		// the authoritative membership.
	case from == n.memberFrom || sameMembers(cur, members):
		// The same announcer retrying, or a concurrent announce of the
		// identical list: idempotent.
		applied = true
		apply = nil
	default:
		// Concurrent conflicting announce at the same epoch: keep
		// every member from both lists and make the announcer converge
		// the fleet on the union.
		seen := map[string]bool{}
		apply = apply[:0:0]
		for _, m := range append(append([]string(nil), cur...), members...) {
			if m != "" && !seen[m] {
				seen[m] = true
				apply = append(apply, m)
			}
		}
	}
	var closing []*peer
	if applied || epoch == n.memberEpoch {
		if epoch != 0 && applied {
			n.memberEpoch = epoch
			n.memberFrom = from
		}
		if apply != nil {
			closing = n.setMembersLocked(apply)
			changed = !sameMembers(cur, n.ring.Members())
		}
	}
	n.mu.Unlock()
	for _, p := range closing {
		p.close()
	}
	return applied, changed
}

// AcceptRebalance handles an announced membership: it passes the
// sender's admission gate like every other inbound mesh operation,
// applies the announce if its epoch wins (self always stays a member),
// and replies immediately with this node's resulting epoch and
// membership — the shard push runs asynchronously (kickRebalance), so
// a large store cannot time out the announcer's call or be spammed
// into synchronous amplification; gossip converges anything an
// interrupted push leaves behind.
func (n *Node) AcceptRebalance(req *ipc.MeshReq) (*ipc.MeshInfo, error) {
	release, err := n.admitPeer(req.From)
	if err != nil {
		return nil, err
	}
	defer release()
	applied, changed := n.applyAnnounce(req.Keys, req.Gen, req.From)
	if changed {
		n.kickRebalance()
	}
	n.mu.Lock()
	epoch := n.memberEpoch
	members := n.ring.Members()
	n.mu.Unlock()
	return &ipc.MeshInfo{Found: applied, Gen: epoch, Want: members}, nil
}

// kickRebalance runs Rebalance in the background, coalescing kicks: at
// most one push loop at a time, at most one more queued behind it.
func (n *Node) kickRebalance() {
	select {
	case <-n.stop:
		return // shutting down: nothing to converge any more
	default:
	}
	n.mu.Lock()
	if n.rebalRunning {
		n.rebalPending = true
		n.mu.Unlock()
		return
	}
	n.rebalRunning = true
	n.mu.Unlock()
	n.loopWG.Add(1)
	go func() {
		defer n.loopWG.Done()
		for {
			n.Rebalance()
			n.mu.Lock()
			if !n.rebalPending {
				n.rebalRunning = false
				n.mu.Unlock()
				return
			}
			n.rebalPending = false
			n.mu.Unlock()
		}
	}()
}

// exportOrHold fetches the push payload for a content key: the encoded
// live variant when one exists, the held record otherwise.
func (n *Node) exportOrHold(ckey string) []byte {
	if blob, _, ok := n.srv.ExportContent(ckey, false); ok {
		return blob
	}
	return n.heldBlob(ckey)
}

// Rebalance pushes every exportable record whose ring owner is another
// daemon to that owner — the shard move of a join or leave.  Pushes
// are idempotent copies of content-addressed records, so a crash at
// any point leaves every shard consistent; rerunning resumes.  Held
// records are dropped once delivered (their new owner serves them);
// live variants stay, they are this daemon's cache.
func (n *Node) Rebalance() (moved int, err error) {
	defer func() {
		if r := recover(); r != nil {
			moved, err = 0, fmt.Errorf("mesh: rebalance: recovered: %v", r)
		}
	}()
	if err := n.faults.Fire(fault.SiteMeshRebalance); err != nil {
		return 0, err
	}
	keys := n.srv.ContentKeys()
	keys = append(keys, n.HeldKeys()...)
	seen := map[string]bool{}
	for _, ckey := range keys {
		select {
		case <-n.stop:
			// Close was called: abandon the push loop promptly; the
			// content stays put and gossip or a rerun resumes the move.
			return moved, nil
		default:
		}
		if seen[ckey] {
			continue
		}
		seen[ckey] = true
		owner, p := n.ownerPeer(ckey)
		if owner == n.cfg.Self || p == nil {
			continue
		}
		blob := n.exportOrHold(ckey)
		if blob == nil {
			continue
		}
		// A faulted push skips just this key; the content stays put and
		// the next rebalance or gossip round moves it.
		if ferr := n.faults.Fire(fault.SiteMeshRebalance); ferr != nil {
			continue
		}
		if n.pushRecord(p, ckey, blob) {
			moved++
			n.rebalPushed.Add(1)
			n.dropHold(ckey)
		}
	}
	return moved, nil
}

// AnnounceMembership broadcasts the current ring membership to every
// peer under a fresh membership epoch (each applies it and kicks an
// asynchronous shard push), then rebalances locally.  Call after
// AddPeer/RemovePeer to effect a join or leave.  A reply reporting a
// stale or conflicting announce carries the peer's authoritative
// membership: the announcer folds it in (union — concurrent joins keep
// every live member) and re-announces under a higher epoch, so two
// racing announces converge instead of whichever arrived last silently
// winning.
func (n *Node) AnnounceMembership() error {
	var firstErr error
	for attempt := 0; attempt < 3; attempt++ {
		n.mu.Lock()
		n.memberEpoch++
		n.memberFrom = n.cfg.Self
		epoch := n.memberEpoch
		members := n.ring.Members()
		n.mu.Unlock()
		divergent := map[string]bool{}
		for _, m := range members {
			divergent[m] = true
		}
		var divergentEpoch uint64
		diverged := false
		for _, p := range n.peerList() {
			c, err := p.client(n.clientOpts())
			if err != nil {
				p.up.Store(false)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
			resp, err := c.CallCtx(ctx, &ipc.Request{Op: ipc.OpMeshRebalance, Mesh: &ipc.MeshReq{
				From: n.cfg.Self, Keys: members, Gen: epoch,
			}})
			cancel()
			if err != nil {
				p.up.Store(false)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			p.up.Store(true)
			if resp.Mesh != nil && !resp.Mesh.Found {
				diverged = true
				if resp.Mesh.Gen > divergentEpoch {
					divergentEpoch = resp.Mesh.Gen
				}
				for _, m := range resp.Mesh.Want {
					if m != "" {
						divergent[m] = true
					}
				}
			}
		}
		if !diverged {
			break
		}
		// Some peer holds a newer or conflicting membership: adopt the
		// union and announce it again under an epoch past everything
		// seen.  The union only grows, so this reaches a fixed point;
		// if three rounds are not enough, gossip and the competing
		// announcer finish the convergence.
		union := make([]string, 0, len(divergent))
		for m := range divergent {
			union = append(union, m)
		}
		sort.Strings(union)
		n.mu.Lock()
		if divergentEpoch > n.memberEpoch {
			n.memberEpoch = divergentEpoch
		}
		closing := n.setMembersLocked(union)
		n.mu.Unlock()
		for _, p := range closing {
			p.close()
		}
	}
	if _, err := n.Rebalance(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// GossipTick runs one anti-entropy round: for each peer, offer the
// digest of content keys this daemon can export that the peer owns,
// and push whatever the peer reports missing.  Failures skip the peer;
// the next round re-offers the same digests (gossip is convergence,
// not correctness).
func (n *Node) GossipTick() (pushed int, err error) {
	defer func() {
		if r := recover(); r != nil {
			pushed, err = 0, fmt.Errorf("mesh: gossip: recovered: %v", r)
		}
	}()
	if err := n.faults.Fire(fault.SiteMeshGossip); err != nil {
		return 0, err
	}
	n.gossipRounds.Add(1)
	gen := n.srv.NamespaceGen()
	keys := append(n.srv.ContentKeys(), n.HeldKeys()...)
	var firstErr error
	for _, p := range n.peerList() {
		var digest []string
		for _, k := range keys {
			if owner, _ := n.ownerPeer(k); owner == p.addr {
				digest = append(digest, k)
			}
		}
		c, cerr := p.client(n.clientOpts())
		if cerr != nil {
			p.up.Store(false)
			if firstErr == nil {
				firstErr = cerr
			}
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.CallTimeout)
		resp, cerr := c.CallCtx(ctx, &ipc.Request{Op: ipc.OpMeshGossip, Mesh: &ipc.MeshReq{
			From: n.cfg.Self, Gen: gen, Keys: digest,
		}})
		cancel()
		if cerr != nil {
			p.up.Store(false)
			if firstErr == nil {
				firstErr = cerr
			}
			continue
		}
		p.up.Store(true)
		if resp.Mesh == nil {
			continue
		}
		n.mu.Lock()
		n.peerGen[p.addr] = resp.Mesh.Gen
		n.mu.Unlock()
		for _, want := range resp.Mesh.Want {
			blob := n.exportOrHold(want)
			if blob == nil {
				continue
			}
			if n.pushRecord(p, want, blob) {
				pushed++
				n.gossipPushed.Add(1)
			}
		}
	}
	return pushed, firstErr
}

// Start launches the background gossip loop (no-op without a
// configured GossipInterval).
func (n *Node) Start() {
	if n.cfg.GossipInterval <= 0 {
		return
	}
	n.loopWG.Add(1)
	go func() {
		defer n.loopWG.Done()
		t := time.NewTicker(n.cfg.GossipInterval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				n.GossipTick()
			}
		}
	}()
}

// Close stops the gossip loop and closes every peer client.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.loopWG.Wait()
	for _, p := range n.peerList() {
		p.close()
	}
}

// peerFetcher adapts a mesh peer's client to server.RemoteFetcher so
// namespace federation (§10) rides the mesh's authenticated
// connections.
type peerFetcher struct{ c *ipc.Client }

func (f peerFetcher) FetchMeta(path string) (string, bool, error) {
	resp, err := f.c.Call(&ipc.Request{Op: ipc.OpGetMeta, Path: path})
	if err != nil {
		return "", false, err
	}
	return resp.Text, resp.Flag, nil
}

func (f peerFetcher) FetchObject(path string) ([]byte, error) {
	resp, err := f.c.Call(&ipc.Request{Op: ipc.OpGetObject, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// MountPeer mounts a mesh peer's namespace under prefix: lookups below
// it that miss locally are fetched from the peer over its mesh
// connection.  The peer must already be a ring member (AddPeer).
func (n *Node) MountPeer(prefix, addr string) error {
	n.mu.Lock()
	p := n.peers[addr]
	n.mu.Unlock()
	if p == nil {
		return fmt.Errorf("mesh: %s is not a known peer", addr)
	}
	c, err := p.client(n.clientOpts())
	if err != nil {
		return err
	}
	return n.srv.Mount(prefix, peerFetcher{c: c})
}

// PeersUp counts peers whose last contact succeeded.
func (n *Node) PeersUp() (up, total int) {
	peers := n.peerList()
	for _, p := range peers {
		if p.up.Load() {
			up++
		}
	}
	return up, len(peers)
}

// GossipRounds reports completed anti-entropy rounds.
func (n *Node) GossipRounds() uint64 { return n.gossipRounds.Load() }

// Served reports inbound peer fetches answered with content.
func (n *Node) Served() uint64 { return n.served.Load() }

// Health fills the mesh fields of a health report.
func (n *Node) Health(hi *ipc.HealthInfo) {
	up, total := n.PeersUp()
	hi.MeshPeers = total
	hi.MeshPeersUp = up
	hi.MeshShards = len(n.Members())
	st := n.srv.Stats()
	hi.MeshPeerFetches = st.MeshFetches
	hi.MeshMetaRebases = st.MeshMetaRebases
	hi.MeshBlobFetches = st.MeshBlobInstalls
	hi.MeshGossipRounds = n.gossipRounds.Load()
}

// StatsLine renders the mesh line of `omos stats`.
func (n *Node) StatsLine() string {
	st := n.srv.Stats()
	up, total := n.PeersUp()
	return fmt.Sprintf(
		"mesh: self=%s shards=%d peers-up=%d/%d fetches=%d meta-rebases=%d blob-installs=%d fallbacks=%d served=%d gossip-rounds=%d pushed=%d",
		n.cfg.Self, len(n.Members()), up, total,
		st.MeshFetches, st.MeshMetaRebases, st.MeshBlobInstalls, st.MeshFallbacks,
		n.served.Load(), n.gossipRounds.Load(), n.gossipPushed.Load()+n.rebalPushed.Load())
}
