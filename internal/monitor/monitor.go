// Package monitor implements OMOS's dynamic program monitoring and
// transformation (§4.1, §6, and the companion paper [14]): the server
// transparently interposes logging wrappers around every routine using
// module operations, collects the call trace, derives a preferred
// routine order, and re-links the program with hot routines packed
// together to improve locality of reference.
package monitor

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"omos/internal/asm"
	"omos/internal/jigsaw"
	"omos/internal/obj"
	"omos/internal/osim"
)

// Registry maps monitoring event ids to function names.  One registry
// serves one wrapped program image.
type Registry struct {
	names  []string
	byName map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]uint64{}}
}

// idFor assigns (or returns) the event id for a function name.
func (r *Registry) idFor(name string) uint64 {
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := uint64(len(r.names))
	r.names = append(r.names, name)
	r.byName[name] = id
	return id
}

// Name returns the function name for an event id.
func (r *Registry) Name(id uint64) (string, bool) {
	if id < uint64(len(r.names)) {
		return r.names[id], true
	}
	return "", false
}

// Len returns the number of registered functions.
func (r *Registry) Len() int { return len(r.names) }

// FuncsOf lists the exported function definitions of a module, in
// fragment order (the default layout order).
func FuncsOf(m *jigsaw.Module) []string {
	var out []string
	seen := map[string]bool{}
	for _, lv := range m.LinkViews() {
		for _, d := range lv.Defs {
			if d.Deleted || d.Local {
				continue
			}
			s := lv.Obj.FindSym(d.Raw)
			if s == nil || s.Kind != obj.SymFunc {
				continue
			}
			if !seen[d.Ext] {
				seen[d.Ext] = true
				out = append(out, d.Ext)
			}
		}
	}
	return out
}

// monSuffix is appended to the original definition when a wrapper
// takes over its name.  It contains no '$' so it survives Go's regexp
// replacement-template expansion literally.
const monSuffix = "__mon"

// Wrap interposes a monitoring wrapper around every exported function
// of the module except those matching skip (e.g. the entry stub):
// each original definition F is renamed F$mon and a generated wrapper
// named F logs an event and calls the original.  Internal calls are
// monitored too, exactly as OMOS's transparent interposition does.
func Wrap(m *jigsaw.Module, reg *Registry, skip *regexp.Regexp) (*jigsaw.Module, error) {
	funcs := []string{}
	for _, f := range FuncsOf(m) {
		if skip != nil && skip.MatchString(f) {
			continue
		}
		if strings.HasSuffix(f, monSuffix) {
			return nil, fmt.Errorf("monitor: %s is already wrapped", f)
		}
		funcs = append(funcs, f)
	}
	if len(funcs) == 0 {
		return m, nil
	}
	alt := "^(" + strings.Join(quoteAll(funcs), "|") + ")$"
	re, err := regexp.Compile(alt)
	if err != nil {
		return nil, fmt.Errorf("monitor: %v", err)
	}
	// Rename definitions only: references keep the original names and
	// will bind to the wrappers.
	renamed := m.Rename(re, "${1}"+monSuffix, jigsaw.RenameDefs)

	var sb strings.Builder
	sb.WriteString(".text\n")
	for _, f := range funcs {
		fmt.Fprintf(&sb, `%[1]s:
    push r1
    movi r1, %[2]d
    sys %[3]d
    pop r1
    call %[1]s%[4]s
    ret
`, f, reg.idFor(f), osim.SysLog, monSuffix)
	}
	o, err := asm.Assemble("monitor-wrappers.s", sb.String())
	if err != nil {
		return nil, fmt.Errorf("monitor: assembling wrappers: %w", err)
	}
	wm, err := jigsaw.NewModule(o)
	if err != nil {
		return nil, err
	}
	return jigsaw.Merge(renamed, wm)
}

func quoteAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = regexp.QuoteMeta(n)
	}
	return out
}

// OrderFromTrace derives the preferred routine order from a collected
// event trace: routines in first-call order (the hot set, in temporal
// order), which packs the startup path and working set into the fewest
// pages.
func OrderFromTrace(trace []uint64, reg *Registry) []string {
	seen := map[uint64]bool{}
	var out []string
	for _, id := range trace {
		if seen[id] {
			continue
		}
		seen[id] = true
		if name, ok := reg.Name(id); ok {
			out = append(out, name)
		}
	}
	return out
}

// CallCounts aggregates the trace into per-function call counts.
func CallCounts(trace []uint64, reg *Registry) map[string]int {
	out := map[string]int{}
	for _, id := range trace {
		if name, ok := reg.Name(id); ok {
			out[name]++
		}
	}
	return out
}

// Reorder re-ranks the module's fragments so that fragments defining
// hot functions come first, in the given order; everything else keeps
// its relative order afterwards.  This is a pure link-level
// transformation: no source or object files change.
func Reorder(m *jigsaw.Module, hot []string) *jigsaw.Module {
	rank := map[string]int{}
	for i, name := range hot {
		rank[name] = i
	}
	cold := len(hot) + 1
	return m.ReorderFragments(func(o *obj.Object) int {
		best := cold
		for i := range o.Syms {
			s := &o.Syms[i]
			if !s.Defined || s.Kind != obj.SymFunc {
				continue
			}
			if r, ok := rank[s.Name]; ok && r < best {
				best = r
			}
		}
		return best
	})
}

// HotNames returns the functions sorted by descending call count, for
// reports.
func HotNames(counts map[string]int) []string {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
