package monitor

import "sort"

// Transitions aggregates trace adjacencies: how often a call to A was
// immediately followed by a call to B.  This approximates the dynamic
// call-graph edge weights [14] uses to derive routine orderings.
func Transitions(trace []uint64, reg *Registry) map[[2]string]int {
	out := map[[2]string]int{}
	for i := 1; i < len(trace); i++ {
		a, okA := reg.Name(trace[i-1])
		b, okB := reg.Name(trace[i])
		if !okA || !okB || a == b {
			continue
		}
		out[[2]string{a, b}]++
	}
	return out
}

// GreedyOrder derives a layout by chaining the strongest observed
// transitions: start from the most-called routine, then repeatedly
// append the strongest not-yet-placed successor of the tail (falling
// back to the globally strongest remaining edge, then to call counts).
// This is the classic greedy call-chain layout, a closer cousin of
// [14]'s call-graph ordering than plain first-call order.
func GreedyOrder(trace []uint64, reg *Registry) []string {
	counts := CallCounts(trace, reg)
	if len(counts) == 0 {
		return nil
	}
	trans := Transitions(trace, reg)
	succ := map[string]map[string]int{}
	for edge, n := range trans {
		if succ[edge[0]] == nil {
			succ[edge[0]] = map[string]int{}
		}
		succ[edge[0]][edge[1]] += n
	}

	placed := map[string]bool{}
	var out []string
	take := func(name string) {
		placed[name] = true
		out = append(out, name)
	}
	// Deterministic tie-breaking: by count desc, then name.
	byCount := HotNames(counts)
	take(byCount[0])
	for len(out) < len(counts) {
		tail := out[len(out)-1]
		next := ""
		best := 0
		var cands []string
		for s := range succ[tail] {
			cands = append(cands, s)
		}
		sort.Strings(cands)
		for _, s := range cands {
			if !placed[s] && succ[tail][s] > best {
				best = succ[tail][s]
				next = s
			}
		}
		if next == "" {
			// Strongest remaining edge anywhere.
			type edge struct {
				to string
				n  int
			}
			var all []edge
			for e, n := range trans {
				if !placed[e[1]] {
					all = append(all, edge{e[1], n})
				}
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].n != all[j].n {
					return all[i].n > all[j].n
				}
				return all[i].to < all[j].to
			})
			if len(all) > 0 {
				next = all[0].to
			}
		}
		if next == "" {
			// Fall back to call counts.
			for _, name := range byCount {
				if !placed[name] {
					next = name
					break
				}
			}
		}
		take(next)
	}
	return out
}
