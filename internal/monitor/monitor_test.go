package monitor

import (
	"reflect"
	"regexp"
	"testing"

	"omos/internal/asm"
	"omos/internal/jigsaw"
	"omos/internal/link"
	"omos/internal/minic"
	"omos/internal/obj"
	"omos/internal/osim"
)

// buildModule compiles mini-C into a module.
func buildModule(t *testing.T, src string) *jigsaw.Module {
	t.Helper()
	objs, err := minic.Compile(src, minic.Options{Unit: "t.c"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := jigsaw.NewModule(objs...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runModule(t *testing.T, m *jigsaw.Module) *osim.Process {
	t.Helper()
	crt0, err := asm.Assemble("crt0.s", "\n.text\n_start:\n    call main\n    mov r1, r0\n    sys 1\n")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := jigsaw.NewModule(crt0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := jigsaw.Merge(cm, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.Link(full, link.Options{
		Name: "mon", TextBase: 0x100000, DataBase: 0x40000000, Entry: "_start",
	})
	if err != nil {
		t.Fatal(err)
	}
	k := osim.NewKernel()
	p := k.Spawn()
	for i := range res.Image.Segments {
		s := &res.Image.Segments[i]
		if err := p.MapPrivateBytes(s.Addr, s.Data, s.MemSize, s.Perm, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetupStack(nil); err != nil {
		t.Fatal(err)
	}
	p.CPU.PC = res.Image.Entry
	if _, err := k.RunToExit(p); err != nil {
		t.Fatal(err)
	}
	return p
}

const traceSrc = `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
int main() {
    int i;
    int acc;
    acc = 0;
    i = 0;
    while (i < 3) { acc = acc + mid(i); i = i + 1; }
    return acc + leaf(acc);
}
`

func TestWrapCollectsTrace(t *testing.T) {
	m := buildModule(t, traceSrc)
	reg := NewRegistry()
	wrapped, err := Wrap(m, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := runModule(t, wrapped)
	// Semantics preserved: mid(0..2) = 2+4+6 = 12, + leaf(12) = 25.
	if p.ExitCode != 25 {
		t.Fatalf("exit = %d, want 25", p.ExitCode)
	}
	counts := CallCounts(p.Trace, reg)
	if counts["main"] != 1 || counts["mid"] != 3 || counts["leaf"] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	order := OrderFromTrace(p.Trace, reg)
	if !reflect.DeepEqual(order, []string{"main", "mid", "leaf"}) {
		t.Fatalf("order = %v", order)
	}
	if got := HotNames(counts)[0]; got != "leaf" {
		t.Fatalf("hottest = %s", got)
	}
}

func TestWrapSkipPattern(t *testing.T) {
	m := buildModule(t, traceSrc)
	reg := NewRegistry()
	wrapped, err := Wrap(m, reg, regexp.MustCompile(`^main$`))
	if err != nil {
		t.Fatal(err)
	}
	p := runModule(t, wrapped)
	counts := CallCounts(p.Trace, reg)
	if counts["main"] != 0 {
		t.Fatalf("main should be skipped: %v", counts)
	}
	if counts["mid"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestWrapTwiceRejected(t *testing.T) {
	m := buildModule(t, traceSrc)
	reg := NewRegistry()
	w1, err := Wrap(m, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Wrap(w1, reg, nil); err == nil {
		t.Fatal("double wrap accepted")
	}
}

func TestReorderPacksHotFragments(t *testing.T) {
	m := buildModule(t, traceSrc)
	hot := []string{"leaf", "main"}
	sorted := Reorder(m, hot)
	var order []string
	for _, o := range sorted.Objects() {
		for i := range o.Syms {
			s := &o.Syms[i]
			if s.Defined && s.Kind == obj.SymFunc && s.Bind == obj.BindGlobal {
				order = append(order, s.Name)
			}
		}
	}
	// leaf first, then main, then the cold remainder in stable order.
	if order[0] != "leaf" || order[1] != "main" {
		t.Fatalf("order = %v", order)
	}
	// Reordered module still links and runs identically.
	p := runModule(t, sorted)
	if p.ExitCode != 25 {
		t.Fatalf("reordered exit = %d", p.ExitCode)
	}
}

func TestReorderReducesTouchedPages(t *testing.T) {
	// Many cold functions between two hot ones: after reordering the
	// hot pair shares pages.
	src := "int hot_a(int x) { return x + 1; }\n"
	for i := 0; i < 120; i++ {
		src += coldFn(i)
	}
	src += "int hot_b(int x) { return hot_a(x) * 2; }\n"
	src += "int main() { return hot_b(20) & 255; }\n"
	m := buildModule(t, src)
	p1 := runModule(t, m)
	sorted := Reorder(m, []string{"main", "hot_b", "hot_a"})
	p2 := runModule(t, sorted)
	if p2.ExitCode != p1.ExitCode {
		t.Fatalf("exit codes differ: %d vs %d", p1.ExitCode, p2.ExitCode)
	}
	if p2.AS.TouchedText >= p1.AS.TouchedText {
		t.Fatalf("reorder did not reduce pages: %d -> %d", p1.AS.TouchedText, p2.AS.TouchedText)
	}
}

func coldFn(i int) string {
	return "int cold" + string(rune('a'+i%26)) + string(rune('0'+i/26)) +
		"(int x) { int s; s = x; while (x > 0) { s = s + x; x = x - 1; } return s; }\n"
}

func TestFuncsOf(t *testing.T) {
	m := buildModule(t, traceSrc)
	funcs := FuncsOf(m)
	if !reflect.DeepEqual(funcs, []string{"leaf", "mid", "main"}) {
		t.Fatalf("funcs = %v", funcs)
	}
}

func TestTransitionsAndGreedyOrder(t *testing.T) {
	m := buildModule(t, traceSrc)
	reg := NewRegistry()
	wrapped, err := Wrap(m, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := runModule(t, wrapped)
	trans := Transitions(p.Trace, reg)
	// The dominant adjacency is mid -> leaf (every mid call leads to
	// leaf).
	if trans[[2]string{"mid", "leaf"}] < 3 {
		t.Fatalf("transitions = %v", trans)
	}
	order := GreedyOrder(p.Trace, reg)
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// leaf is the hottest start; its strongest observed successor
	// chain must include mid next.
	if order[0] != "leaf" || order[1] != "mid" {
		t.Fatalf("greedy order = %v", order)
	}
	// Every routine appears exactly once.
	seen := map[string]bool{}
	for _, n := range order {
		if seen[n] {
			t.Fatalf("duplicate %s in %v", n, order)
		}
		seen[n] = true
	}
}

func TestGreedyOrderEmptyTrace(t *testing.T) {
	reg := NewRegistry()
	if got := GreedyOrder(nil, reg); got != nil {
		t.Fatalf("order = %v", got)
	}
}
