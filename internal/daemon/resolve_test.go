package daemon

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"omos"
	"omos/internal/fault"
	"omos/internal/ipc"
)

// TestFaultRegistryPinned pins the injectable surface: TestFaultMatrix
// ranges over fault.Sites(), and `omosd -list-faults` dumps the same
// registry, so a new site added without updating this literal fails
// here — the matrix can never silently lose coverage.
func TestFaultRegistryPinned(t *testing.T) {
	wantSites := []string{
		fault.SiteBuildEval, fault.SiteBuildLink, fault.SiteCheckpoint,
		fault.SiteIPCRead, fault.SiteIPCWrite,
		fault.SiteMeshGossip, fault.SiteMeshPeerFetch, fault.SiteMeshRebalance,
		fault.SiteNamespaceHijack,
		fault.SiteFrameMake, fault.SiteResolveCache, fault.SiteStoreRead,
		fault.SiteStoreRename, fault.SiteStoreScrub, fault.SiteStoreWrite,
		fault.SiteUpgradeCanary, fault.SiteUpgradeCommit, fault.SiteUpgradeRollback,
	}
	if got := fault.Sites(); !reflect.DeepEqual(got, wantSites) {
		t.Fatalf("fault.Sites() = %v, want %v", got, wantSites)
	}
	wantKinds := []string{"corrupt", "delay", "error", "panic"}
	if got := fault.Kinds(); !reflect.DeepEqual(got, wantKinds) {
		t.Fatalf("fault.Kinds() = %v, want %v", got, wantKinds)
	}
}

// TestHijackDefenseEndToEnd: an injected definer swap at map time
// (fault site namespace.hijack) surfaces over the wire as the typed
// pin-violation error — counted, quarantined, never a silent re-bind —
// and the retried run rebuilds, re-pins, and answers correctly.
func TestHijackDefenseEndToEnd(t *testing.T) {
	sys, err := omos.NewSystemWith(omos.Options{FaultSpec: "namespace.hijack:error:n=1:count=1"})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFaultDaemon(t, sys)
	defineWorkload(t, c)

	_, runErr := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
	if !errors.Is(runErr, ipc.ErrPinViolation) {
		t.Fatalf("hijacked run: err = %v, want ErrPinViolation", runErr)
	}
	var pv *ipc.PinViolationError
	if !errors.As(runErr, &pv) || pv.Image != "/bin/t" {
		t.Fatalf("pin violation detail = %+v (err %v)", pv, runErr)
	}

	// Fault budget spent: the retry rebuilds from source and succeeds.
	runUntilCorrect(t, c, 2)

	stats := callRetry(t, c, &ipc.Request{Op: ipc.OpStats}, 2).Text
	if !strings.Contains(stats, "pin-violations=1") {
		t.Fatalf("violation not counted in stats:\n%s", stats)
	}
	if !strings.Contains(stats, "rebinds-allowed=0") {
		t.Fatalf("a re-bind slipped through silently:\n%s", stats)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRebindGuardEndToEnd: a content-changing redefine of a live
// definer is refused over the wire with the typed rebind error; the
// same request with AllowRebind set is permitted, and the program
// picks up the new library on its next run.
func TestRebindGuardEndToEnd(t *testing.T) {
	sys, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFaultDaemon(t, sys)
	defineWorkload(t, c)
	runUntilCorrect(t, c, 1)

	changed := `(source "c" "int triple(int x) { return 3 * x + 1; }")`
	_, defErr := c.Call(&ipc.Request{Op: ipc.OpDefineLib, Path: "/lib/l", Text: changed})
	if !errors.Is(defErr, ipc.ErrRebindBlocked) {
		t.Fatalf("unallowed redefine: err = %v, want ErrRebindBlocked", defErr)
	}
	var re *ipc.RebindError
	if !errors.As(defErr, &re) || re.Program != "/bin/t" || re.Symbol != "triple" {
		t.Fatalf("rebind detail = %+v (err %v)", re, defErr)
	}

	if _, err := c.Call(&ipc.Request{Op: ipc.OpDefineLib, Path: "/lib/l",
		Text: changed, AllowRebind: true}); err != nil {
		t.Fatalf("allowed redefine failed: %v", err)
	}
	resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExitCode != 43 {
		t.Fatalf("exit = %d, want 43 (new library body)", resp.ExitCode)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExplainEndToEndAfterWarmRestart is the audit-surface acceptance
// criterion: after a warm restart, `omos explain <sym>` (OpExplain)
// reports the definer, the library view, and the namespace generation
// from the binding table that persisted through the store.
func TestExplainEndToEndAfterWarmRestart(t *testing.T) {
	dir := t.TempDir()

	sys, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFaultDaemon(t, sys)
	defineWorkload(t, c)
	runUntilCorrect(t, c, 1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sys2.WarmLoaded == 0 {
		t.Fatal("nothing warm-loaded")
	}
	c2, _ := startFaultDaemon(t, sys2)
	resp, err := c2.Call(&ipc.Request{Op: ipc.OpExplain, Path: "triple"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"symbol triple:",
		"/bin/t binds triple -> /lib/l",
		"library 0 of /bin/t",
		"namespace generation",
	} {
		if !strings.Contains(resp.Text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, resp.Text)
		}
	}
	// An unknown symbol is an ordinary error, not a protocol failure.
	if _, err := c2.Call(&ipc.Request{Op: ipc.OpExplain, Path: "no_such_symbol"}); err == nil {
		t.Fatal("explain of an unrecorded symbol succeeded")
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRestartResolvesWithoutSearch drives the zero-search
// criterion over the wire: a warm daemon that must relink (cache
// entries dropped, binding tables kept) reports zero symbol searches
// and at least one binding hit in its stats.
func TestWarmRestartResolvesWithoutSearch(t *testing.T) {
	dir := t.TempDir()

	sys, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFaultDaemon(t, sys)
	defineWorkload(t, c)
	runUntilCorrect(t, c, 1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := startFaultDaemon(t, sys2)
	defineWorkload(t, c2)
	// Drop the warm program image so the run below must relink; the
	// warm-loaded binding table supplies the resolution.
	if n := sys2.Srv.Evict("/bin/t"); n == 0 {
		t.Fatal("nothing evicted")
	}
	runUntilCorrect(t, c2, 1)
	stats := callRetry(t, c2, &ipc.Request{Op: ipc.OpStats}, 2).Text
	line := ""
	for _, l := range strings.Split(stats, "\n") {
		if strings.HasPrefix(l, "resolve:") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no resolve line in stats:\n%s", stats)
	}
	if !strings.Contains(line, "searches=0") {
		t.Fatalf("warm relink searched symbols: %s", line)
	}
	if strings.Contains(line, "hits=0 ") {
		t.Fatalf("warm relink missed the binding cache: %s", line)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}
