package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"omos"
	"omos/internal/fault"
	"omos/internal/ipc"
	"omos/internal/mesh"
)

// startFaultDaemon serves a system over the real protocol with the
// system's fault set armed on the transport too, and returns a client
// tuned to ride out transient failures.
func startFaultDaemon(t *testing.T, sys *omos.System) (*ipc.Client, *ipc.Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ipc.NewServer(New(sys))
	srv.SetFaults(sys.Faults)
	go srv.Serve(l)
	t.Cleanup(srv.Shutdown)
	c, err := ipc.DialWith(l.Addr().String(), ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    30 * time.Second,
		Retries:        3,
		Backoff:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// startMeshFaultDaemon is startFaultDaemon with the system federated
// into a (single-member) mesh whose fault set is the system's own, so
// the mesh.* sites are armed end to end: inbound mesh ops arrive over
// the real wire, outbound rounds run on the real node.
func startMeshFaultDaemon(t *testing.T, sys *omos.System) (*ipc.Client, *mesh.Node) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := New(sys)
	node, err := mesh.New(sys.Srv, mesh.Config{Self: l.Addr().String(), Faults: sys.Faults})
	if err != nil {
		t.Fatal(err)
	}
	b.Mesh = node
	t.Cleanup(node.Close)
	srv := ipc.NewServer(b)
	srv.SetFaults(sys.Faults)
	go srv.Serve(l)
	t.Cleanup(srv.Shutdown)
	c, err := ipc.DialWith(l.Addr().String(), ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    30 * time.Second,
		Retries:        3,
		Backoff:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, node
}

// meshCycle reaches every mesh.* fault site while the armed budget
// fires: inbound fetches over the wire (the transport recovers injected
// panics), then gossip and rebalance rounds on the node (which recover
// their own).  Every error is an injected fault being absorbed — the
// matrix then re-verifies workload correctness.
func meshCycle(t *testing.T, c *ipc.Client, node *mesh.Node) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		c.MeshFetch(ctx, &ipc.MeshReq{From: "drill", CKey: fmt.Sprintf("drill-%d", i)})
	}
	for i := 0; i < 3; i++ {
		node.GossipTick()
		node.Rebalance()
	}
}

// callRetry issues a call with workload-level retries on top of the
// client's own: each fresh Call gets its own transparent reconnect,
// which is how a real client outlives a fault budget larger than one
// connection.
func callRetry(t *testing.T, c *ipc.Client, req *ipc.Request, attempts int) *ipc.Response {
	t.Helper()
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := c.Call(req)
		if err == nil {
			return resp
		}
		lastErr = err
	}
	t.Fatalf("%s failed after %d attempts: %v", req.Op, attempts, lastErr)
	return nil
}

// defineWorkload installs a tiny library + program over the wire,
// retrying (the transport sites may be armed).
func defineWorkload(t *testing.T, c *ipc.Client) {
	t.Helper()
	callRetry(t, c, &ipc.Request{Op: ipc.OpDefineLib, Path: "/lib/l",
		Text: `(source "c" "int triple(int x) { return 3 * x; }")`}, 4)
	callRetry(t, c, &ipc.Request{Op: ipc.OpDefine, Path: "/bin/t",
		Text: `(merge /lib/crt0.o (source "c" "extern int triple(int); int main() { return triple(14); }") /lib/l)`}, 4)
}

// upgradeV2Lib is a behaviour-identical v2 of the fault workload's
// library (the program still exits 42), so the matrix can flip it live
// without changing what correctness looks like.
const upgradeV2Lib = `(source "c" "int triple(int x) { return 3 * x; } int triple_aux(int x) { return x; }")`

// upgradeCycle drives a full live-upgrade lifecycle against the
// daemon: one epoch with cohort traffic rolled back, then one
// committed — enough to reach every upgrade.* fault site while the
// armed budget fires.  Every step tolerates injected failures: a
// canary fault trips the automatic rollback (that IS the feature), a
// faulted rollback or commit is retried until the budget drains.
func upgradeCycle(t *testing.T, c *ipc.Client) {
	t.Helper()
	openAndStage := func() {
		callRetry(t, c, &ipc.Request{Op: ipc.OpUpgrade, Unit: "start", Text: "100"}, 4)
		callRetry(t, c, &ipc.Request{Op: ipc.OpUpgrade, Unit: "stage",
			Path: "/lib/l", Text: upgradeV2Lib, Args: []string{"lib"}}, 4)
	}
	cohortTraffic := func() {
		// Run the program a few times; during an epoch these are canary
		// builds.  A failure here is an armed upgrade.canary fault — it
		// feeds the health gate, which auto-rolls-back, and that is a
		// legitimate outcome the rest of the cycle must absorb.
		for i := 0; i < 3; i++ {
			c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
		}
	}
	// Epoch 1: cohort traffic, then an operator rollback (retried past
	// injected rollback faults; "no active epoch" means the gate got
	// there first).
	openAndStage()
	cohortTraffic()
	for i := 0; i < 5; i++ {
		_, err := c.Call(&ipc.Request{Op: ipc.OpRollback, Text: "fault drill"})
		if err == nil || strings.Contains(err.Error(), "no active upgrade epoch") {
			break
		}
	}
	// Epoch 2: cohort traffic, then commit (retried past injected
	// commit faults; a typed abort means the gate rolled it back).
	openAndStage()
	cohortTraffic()
	for i := 0; i < 5; i++ {
		_, err := c.Call(&ipc.Request{Op: ipc.OpUpgrade, Unit: "commit"})
		if err == nil || errors.Is(err, ipc.ErrUpgradeAborted) ||
			strings.Contains(err.Error(), "no active upgrade epoch") {
			break
		}
	}
	// Whatever the epochs' fates, the engine must come to rest and the
	// workload must be correct.
	st := callRetry(t, c, &ipc.Request{Op: ipc.OpUpgradeStatus}, 4)
	if st.Flag {
		t.Fatalf("upgrade engine did not come to rest: %s", st.Text)
	}
}

// runUntilCorrect retries the (non-idempotent, so never auto-retried)
// run op until the injected fault budget is exhausted and the program
// completes with the right answer.
func runUntilCorrect(t *testing.T, c *ipc.Client, attempts int) {
	t.Helper()
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
		if err == nil {
			if resp.ExitCode != 42 {
				t.Fatalf("exit = %d, want 42 (a fault corrupted results, not just availability)", resp.ExitCode)
			}
			return
		}
		lastErr = err
	}
	t.Fatalf("no correct result in %d attempts: %v", attempts, lastErr)
}

// TestFaultMatrix drives a real client workload against a live daemon
// under every injection site and both error and panic kinds, twice
// per site: a cold session (build pipeline under fire) and a warm
// restart on the same store directory (reconstruction under fire).
// The daemon must survive every cell with correct results.
func TestFaultMatrix(t *testing.T) {
	for _, site := range fault.Sites() {
		for _, kind := range []string{"error", "panic"} {
			t.Run(site+"/"+kind, func(t *testing.T) {
				dir := t.TempDir()
				spec := fmt.Sprintf("%s:%s:n=1:count=2", site, kind)

				// Session 1: cold builds under injection.
				sys, err := omos.NewSystemWith(omos.Options{StoreDir: dir, FaultSpec: spec})
				if err != nil {
					t.Fatal(err)
				}
				var c *ipc.Client
				var node *mesh.Node
				if strings.HasPrefix(site, "mesh.") {
					c, node = startMeshFaultDaemon(t, sys)
				} else {
					c, _ = startFaultDaemon(t, sys)
				}
				defineWorkload(t, c)
				runUntilCorrect(t, c, 6)
				if strings.HasPrefix(site, "upgrade.") {
					// The upgrade sites fire only inside an epoch
					// lifecycle; drive one so the budget lands there.
					upgradeCycle(t, c)
					runUntilCorrect(t, c, 6)
				}
				if node != nil {
					// The mesh sites fire only on mesh traffic; drive
					// rounds of each op so the budget lands there.
					meshCycle(t, c, node)
					runUntilCorrect(t, c, 6)
				}
				hresp, err := c.Call(&ipc.Request{Op: ipc.OpHealth})
				if err != nil || hresp.Health == nil {
					t.Fatalf("daemon unhealthy after faults: %v", err)
				}
				if err := sys.Close(); err != nil {
					t.Fatal(err)
				}

				// Session 2: warm restart on the same store with the
				// same faults re-armed (count resets: two more trips,
				// now aimed at the reconstruction path).
				sys2, err := omos.NewSystemWith(omos.Options{StoreDir: dir, FaultSpec: spec})
				if err != nil {
					t.Fatalf("warm boot under %s: %v", spec, err)
				}
				var c2 *ipc.Client
				var node2 *mesh.Node
				if strings.HasPrefix(site, "mesh.") {
					c2, node2 = startMeshFaultDaemon(t, sys2)
				} else {
					c2, _ = startFaultDaemon(t, sys2)
				}
				defineWorkload(t, c2)
				runUntilCorrect(t, c2, 6)
				if strings.HasPrefix(site, "upgrade.") {
					upgradeCycle(t, c2)
					runUntilCorrect(t, c2, 6)
				}
				if node2 != nil {
					meshCycle(t, c2, node2)
					runUntilCorrect(t, c2, 6)
				}
				if err := sys2.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFaultCorruptBlobQuarantineRebuild is the acceptance scenario:
// flip bytes in a persisted image blob on disk, warm-restart, and the
// daemon must quarantine the damaged blob (visible in -health) while
// the request succeeds via rebuild from source.
func TestFaultCorruptBlobQuarantineRebuild(t *testing.T) {
	dir := t.TempDir()

	sys, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFaultDaemon(t, sys)
	defineWorkload(t, c)
	runUntilCorrect(t, c, 1)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of every persisted blob.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".img") {
			continue
		}
		p := filepath.Join(dir, de.Name())
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xFF
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no blobs persisted; nothing to corrupt")
	}

	// Warm restart: decoding fails, blobs are quarantined, nothing
	// warm-loads — and the workload still runs correctly via rebuild.
	sys2, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sys2.WarmLoaded != 0 {
		t.Fatalf("warm-loaded %d corrupted images", sys2.WarmLoaded)
	}
	c2, _ := startFaultDaemon(t, sys2)
	defineWorkload(t, c2)
	runUntilCorrect(t, c2, 1)

	hresp, err := c2.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || hresp.Health == nil {
		t.Fatalf("health: %v", err)
	}
	if hresp.Health.Quarantined == 0 {
		t.Fatalf("health reports no quarantined blobs after corruption; health = %+v", hresp.Health)
	}
	// The corrupt bytes survive for autopsy.
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) == 0 {
		t.Fatalf("quarantine directory empty (err=%v)", err)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultHealthEndToEnd: the health op over the wire reports uptime
// and warm-load state from a real backend.
func TestFaultHealthEndToEnd(t *testing.T) {
	sys, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := startFaultDaemon(t, sys)
	resp, err := c.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || resp.Health == nil {
		t.Fatalf("health: %v", err)
	}
	h := resp.Health
	if h.Draining || h.InflightBuilds != 0 || h.Recovered != 0 {
		t.Fatalf("fresh daemon health = %+v", h)
	}
}
