package daemon

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"omos"
	"omos/internal/fault"
	"omos/internal/ipc"
)

// TestChaosSoak is the robustness acceptance drill: eight churning
// clients hammer a live daemon whose admission gate is deliberately
// tiny (2 in flight + 2 queued), whose build pipeline is slowed and
// occasionally broken by randomized-but-seeded faults, and whose
// background scrubber and supervisor run hot.  The invariants:
//
//   - Every request terminates in a known outcome — success with the
//     right answer, a typed overload shed, a clean draining refusal,
//     or an injected fault.  Never a hang, never a dead daemon.
//   - Shed-then-retry converges: a client that honors the server's
//     retry-after hint always gets through eventually.
//   - The scrubber, churning over healthy blobs the whole time, never
//     quarantines a single one.
//   - Graceful shutdown completes with clients still around.
//
// Run under -race in CI; the seed is fixed so failures reproduce.
func TestChaosSoak(t *testing.T) {
	const (
		clients    = 8
		perClient  = 12
		maxRetries = 60
	)
	dir := t.TempDir()
	sys, err := omos.NewSystemWith(omos.Options{
		StoreDir:          dir,
		MaxInflight:       2,
		QueueDepth:        2,
		BuildTimeout:      5 * time.Second,
		ScrubInterval:     time.Millisecond,
		ScrubPerTick:      8,
		SuperviseInterval: 5 * time.Millisecond,
		// Every eval pays 1ms (saturates the tiny gate under 8
		// clients); 5% of links die of an injected error.
		FaultSpec: "build.eval:delay:n=1:delay=1ms;build.link:error:p=0.05",
		FaultSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ipc.NewServer(New(sys))
	go srv.Serve(l)

	// Install the workload with a clean client before the storm.
	setup, err := ipc.DialWith(l.Addr().String(), ipc.Options{ConnectTimeout: 2 * time.Second, CallTimeout: 30 * time.Second, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defineWorkload(t, setup)
	setup.Close()

	var ok, shed, injected atomic.Uint64
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := ipc.DialWith(l.Addr().String(), ipc.Options{
				ConnectTimeout: 2 * time.Second,
				CallTimeout:    30 * time.Second,
				Retries:        1,
				Backoff:        time.Millisecond,
			})
			if err != nil {
				t.Errorf("client %d: dial: %v", ci, err)
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				if err := soakRequest(c, &ok, &shed, &injected, maxRetries); err != nil {
					t.Errorf("client %d request %d: %v", ci, i, err)
					return
				}
			}
		}(ci)
	}
	// The soak must not wedge: everything converges well within the
	// deadline or the test fails loudly instead of hanging.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Minute):
		t.Fatal("soak deadlocked: clients still running after 2m")
	}

	if ok.Load() != clients*perClient {
		t.Fatalf("ok=%d, want %d (every request must converge to success)", ok.Load(), clients*perClient)
	}
	t.Logf("soak: ok=%d shed=%d injected=%d", ok.Load(), shed.Load(), injected.Load())

	// Health after the storm: alive, gate did its job, scrubber ran
	// and never quarantined a healthy blob.
	hc, err := ipc.DialWith(l.Addr().String(), ipc.Options{ConnectTimeout: 2 * time.Second, CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := hc.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || hresp.Health == nil {
		t.Fatalf("health after soak: %v", err)
	}
	h := hresp.Health
	if shed.Load() > 0 && h.Shed == 0 {
		t.Fatalf("clients saw %d sheds but health reports none", shed.Load())
	}
	if h.ScrubChecked == 0 {
		t.Fatal("scrubber never ran during the soak")
	}
	if h.ScrubQuarantined != 0 {
		t.Fatalf("scrubber quarantined %d healthy blobs", h.ScrubQuarantined)
	}
	hc.Close()

	// Graceful shutdown with the listener hot: must return, and the
	// store must close clean.
	shutDone := make(chan struct{})
	go func() { srv.Shutdown(); close(shutDone) }()
	select {
	case <-shutDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung")
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("closing store after soak: %v", err)
	}
}

// soakRequest runs /bin/t once with shed-then-retry: overload answers
// are retried after the server's hint; injected build faults are
// retried as a client naturally would; anything else is a soak
// failure.  Counts every intermediate outcome.
func soakRequest(c *ipc.Client, ok, shed, injected *atomic.Uint64, maxRetries int) error {
	var lastErr error
	for attempt := 0; attempt < maxRetries; attempt++ {
		resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
		var oe *ipc.OverloadedError
		switch {
		case err == nil:
			if resp.ExitCode != 42 {
				return fmt.Errorf("exit = %d, want 42 (corruption, not just unavailability)", resp.ExitCode)
			}
			ok.Add(1)
			return nil
		case errors.As(err, &oe):
			// Shed-then-retry: honor the hint and go again.
			shed.Add(1)
			time.Sleep(oe.RetryAfter)
		case errors.Is(err, ipc.ErrDraining):
			return fmt.Errorf("draining mid-soak (no shutdown was requested): %w", err)
		case isInjected(err):
			injected.Add(1)
		default:
			return fmt.Errorf("unclassified outcome: %w", err)
		}
		lastErr = err
	}
	return fmt.Errorf("no convergence in %d attempts: %w", maxRetries, lastErr)
}

// isInjected classifies an app-level error string as an injected
// build fault (the typed value does not cross the wire; its message
// does).
func isInjected(err error) bool {
	return err != nil && strings.Contains(err.Error(), fault.ErrInjected.Error())
}
