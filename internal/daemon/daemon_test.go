package daemon

import (
	"net"
	"strings"
	"testing"

	"omos"
	"omos/internal/ipc"
	"omos/internal/mesh"
	"omos/internal/workload"
)

func startDaemon(t *testing.T, workloads bool) *ipc.Client {
	t.Helper()
	sys, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if workloads {
		cg := workload.CodegenParams{Units: 4, FuncsPerUnit: 4, HotIters: 3}
		if err := InstallWorkloads(sys, cg); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ipc.Serve(l, New(sys))
	t.Cleanup(func() { l.Close() })
	c, err := ipc.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEndDaemon drives the real protocol against a real system:
// define a library and a program over the wire, run it, inspect it.
func TestEndToEndDaemon(t *testing.T) {
	c := startDaemon(t, false)

	if _, err := c.Call(&ipc.Request{Op: ipc.OpDefineLib, Path: "/lib/l",
		Text: `(source "c" "int triple(int x) { return 3 * x; }")`}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(&ipc.Request{Op: ipc.OpDefine, Path: "/bin/t",
		Text: `(merge /lib/crt0.o (source "c" "extern int triple(int); int main() { return triple(14); }") /lib/l)`}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExitCode != 42 {
		t.Fatalf("exit = %d", resp.ExitCode)
	}
	// Bootstrap variant costs more system time (the IPC round trip).
	resp2, err := c.Call(&ipc.Request{Op: ipc.OpRunBoot, Path: "/bin/t"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ExitCode != 42 || resp2.Sys <= resp.Sys {
		t.Fatalf("boot run: exit=%d sys=%d (integrated sys=%d)", resp2.ExitCode, resp2.Sys, resp.Sys)
	}
	// Compile + list + disasm.
	cres, err := c.Call(&ipc.Request{Op: ipc.OpCompile, Path: "/obj/u", Unit: "u",
		Text: "int noop() { return 0; }"})
	if err != nil || len(cres.Paths) == 0 {
		t.Fatalf("compile: %v %v", err, cres)
	}
	dres, err := c.Call(&ipc.Request{Op: ipc.OpDisasm, Path: cres.Paths[0]})
	if err != nil || !strings.Contains(dres.Text, "ret") {
		t.Fatalf("disasm: %v %q", err, dres.Text)
	}
	sres, err := c.Call(&ipc.Request{Op: ipc.OpStats})
	if err != nil || !strings.Contains(sres.Text, "cache:") {
		t.Fatalf("stats: %v %q", err, sres.Text)
	}
	lres, err := c.Call(&ipc.Request{Op: ipc.OpList, Path: "/bin"})
	if err != nil || len(lres.Paths) != 1 {
		t.Fatalf("list: %v %v", err, lres.Paths)
	}
	if _, err := c.Call(&ipc.Request{Op: ipc.OpRemove, Path: "/bin/t"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"}); err == nil {
		t.Fatal("removed program still runs")
	}
}

func TestDaemonWorkloads(t *testing.T) {
	c := startDaemon(t, true)
	resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/ls",
		Args: []string{"-laF", "/data/many"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExitCode != 0 || !strings.Contains(resp.Output, "file07.txt") {
		t.Fatalf("ls: exit=%d out=%q", resp.ExitCode, resp.Output)
	}
	resp, err = c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/codegen"})
	if err != nil || resp.ExitCode != 0 {
		t.Fatalf("codegen: %v exit=%d", err, resp.ExitCode)
	}
}

// startMeshMember serves a system as one mesh member and returns its
// node (the listener address is the ring member ID).
func startMeshMember(t *testing.T, sys *omos.System, cfg mesh.Config) (*mesh.Node, *ipc.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Self = l.Addr().String()
	node, err := mesh.New(sys.Srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	b := New(sys)
	b.Mesh = node
	srv := ipc.NewServer(b)
	srv.MeshSecret = cfg.Secret
	go srv.Serve(l)
	t.Cleanup(srv.Shutdown)
	return node, srv, cfg.Self
}

// TestNamespaceFederation: the §10 network-consolidation item on the
// mesh API — daemon B mounts mesh peer A's namespace and instantiates
// a program whose library lives on A.
func TestNamespaceFederation(t *testing.T) {
	// Server A holds the shared library and a helper object.
	sysA, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sysA.DefineLibrary("/shared/libz", `
(constraint-list "T" 0x3000000 "D" 0x43000000)
(source "c" "
extern int z_helper(int x);
int z_entry(int x) { return z_helper(x) * 2; }
")
`); err != nil {
		t.Fatal(err)
	}
	// The library references an object also held on A — the fetch must
	// recurse through the mount.
	if err := sysA.Assemble("/shared/helper.o", `
.text
z_helper:
    addi r0, r1, 1
    ret
`); err != nil {
		t.Fatal(err)
	}
	// Splice the helper object into the library's blueprint.
	if err := sysA.DefineLibrary("/shared/libz", `
(constraint-list "T" 0x3000000 "D" 0x43000000)
(merge
  (source "c" "
extern int z_helper(int x);
int z_entry(int x) { return z_helper(x) * 2; }
")
  /shared/helper.o)
`); err != nil {
		t.Fatal(err)
	}
	_, srvA, addrA := startMeshMember(t, sysA, mesh.Config{Secret: "fed-secret"})

	// Daemon B joins the mesh and mounts peer A under /shared.
	sysB, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	nodeB, _, _ := startMeshMember(t, sysB, mesh.Config{Secret: "fed-secret"})
	nodeB.AddPeer(addrA)
	if err := nodeB.MountPeer("/shared", addrA); err != nil {
		t.Fatal(err)
	}
	// Unknown peers are refused.
	if err := nodeB.MountPeer("/nowhere", "127.0.0.1:1"); err == nil {
		t.Fatal("mounted an address that is not a mesh peer")
	}

	if err := sysB.Define("/bin/z", `
(merge /lib/crt0.o
  (source "c" "extern int z_entry(int); int main() { return z_entry(10); }")
  /shared/libz)
`); err != nil {
		t.Fatal(err)
	}
	res, err := sysB.Run("/bin/z", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 22 { // (10+1)*2
		t.Fatalf("exit = %d, want 22", res.ExitCode)
	}
	// The fetched entries are cached locally: a second run needs no
	// wire traffic (take peer A down entirely and rerun).
	srvA.Shutdown()
	res2, err := sysB.Run("/bin/z", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExitCode != 22 {
		t.Fatalf("cached federation run: exit = %d", res2.ExitCode)
	}
	// Paths outside the mount still miss cleanly.
	if err := sysB.Define("/bin/miss", `(merge /elsewhere/nothing)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sysB.Run("/bin/miss", nil); err == nil {
		t.Fatal("unmounted path resolved")
	}
}
