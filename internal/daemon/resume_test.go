package daemon

import (
	"fmt"
	"strings"
	"testing"

	"omos"
	"omos/internal/ipc"
)

// resumeLibCount sizes the e2e crash-resume workload.
const resumeLibCount = 4

// defineResumeWorkload installs resumeLibCount libraries and a
// program over the wire, each library at its own preferred placement
// so every session reproduces identical addresses.
func defineResumeWorkload(t *testing.T, c *ipc.Client) {
	t.Helper()
	for i := 1; i <= resumeLibCount; i++ {
		bp := fmt.Sprintf(
			"(constraint-list \"T\" %#x \"D\" %#x)\n(source \"c\" \"int dfn%d() { return %d; }\")",
			0x0300_0000+uint64(i)*0x40_0000, 0x4300_0000+uint64(i)*0x40_0000, i, i)
		callRetry(t, c, &ipc.Request{Op: ipc.OpDefineLib,
			Path: fmt.Sprintf("/lib/dlib%d", i), Text: bp}, 4)
	}
	var src, sum strings.Builder
	libs := ""
	for i := 1; i <= resumeLibCount; i++ {
		fmt.Fprintf(&src, "extern int dfn%d();\n", i)
		if i > 1 {
			sum.WriteString(" + ")
		}
		fmt.Fprintf(&sum, "dfn%d()", i)
		libs += fmt.Sprintf(" /lib/dlib%d", i)
	}
	fmt.Fprintf(&src, "int main() { return %s; }", sum.String())
	callRetry(t, c, &ipc.Request{Op: ipc.OpDefine, Path: "/bin/dresume",
		Text: fmt.Sprintf("(merge /lib/crt0.o (source \"c\" %q)%s)", src.String(), libs)}, 4)
}

// TestDaemonCrashResume is the end-to-end resume scenario: a daemon
// dies mid-build after K node checkpoints; its warm-restarted
// replacement serves the same request by relinking only the missing
// nodes, and reports the resume in health, stats, and the graph op.
func TestDaemonCrashResume(t *testing.T) {
	const k = 2
	dir := t.TempDir()
	wantExit := uint64(resumeLibCount * (resumeLibCount + 1) / 2)

	// Session 1: the (k+1)th link dies; the daemon goes down with the
	// build half checkpointed.
	sys, err := omos.NewSystemWith(omos.Options{
		StoreDir:  dir,
		FaultSpec: fmt.Sprintf("build.link:error:n=%d:count=1", k+1),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Srv.SetBuildWorkers(1)
	c, _ := startFaultDaemon(t, sys)
	defineResumeWorkload(t, c)
	resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/dresume"})
	if err == nil && resp.Err == "" {
		t.Fatal("interrupted run succeeded; fault not armed")
	}
	hresp, err := c.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || hresp.Health == nil {
		t.Fatalf("health: %v", err)
	}
	if hresp.Health.NodesCheckpointed != k {
		t.Fatalf("interrupted daemon checkpointed %d nodes, want %d", hresp.Health.NodesCheckpointed, k)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: warm restart on the same store.
	sys2, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sys2.Srv.SetBuildWorkers(1)
	if sys2.WarmLoaded != k {
		t.Fatalf("warm-loaded %d instances, want %d", sys2.WarmLoaded, k)
	}
	c2, _ := startFaultDaemon(t, sys2)
	defineResumeWorkload(t, c2)
	resp2, err := c2.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/dresume"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ExitCode != wantExit {
		t.Fatalf("resumed exit = %d, want %d", resp2.ExitCode, wantExit)
	}
	h2resp, err := c2.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || h2resp.Health == nil {
		t.Fatalf("health: %v", err)
	}
	h2 := h2resp.Health
	if h2.NodesResumed != k {
		t.Fatalf("resumed daemon NodesResumed = %d, want %d", h2.NodesResumed, k)
	}
	if want := uint64(resumeLibCount + 1 - k); h2.NodesBuilt != want {
		t.Fatalf("resumed daemon NodesBuilt = %d, want %d", h2.NodesBuilt, want)
	}

	// The graph op renders the resumed run.
	gresp, err := c2.Call(&ipc.Request{Op: ipc.OpGraph})
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	for _, want := range []string{"/bin/dresume", "resumed", "nodes:"} {
		if !strings.Contains(gresp.Text, want) {
			t.Fatalf("graph report missing %q:\n%s", want, gresp.Text)
		}
	}
	// And the stats text carries the graph counter line.
	sresp, err := c2.Call(&ipc.Request{Op: ipc.OpStats})
	if err != nil || !strings.Contains(sresp.Text, "graph: ") {
		t.Fatalf("stats missing graph line (err=%v):\n%s", err, sresp.Text)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}
