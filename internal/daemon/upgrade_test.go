package daemon

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"omos"
	"omos/internal/ipc"
	"omos/internal/workload"
)

// upgradeLibBlueprint renders the i-th auxiliary library's blueprint
// with the source appended to — the same constraint addresses
// InstallWorkloads uses, so a flip is purely a content change.
func upgradeLibBlueprint(i int, source string) string {
	return fmt.Sprintf("(constraint-list \"T\" %#x \"D\" %#x)\n(merge (source \"c\" %q))",
		0x0200_0000+uint64(i)*0x40_0000, 0x4200_0000+uint64(i)*0x40_0000, source)
}

// dialUpgrade dials one client tuned for the load test.
func dialUpgrade(t *testing.T, addr string) *ipc.Client {
	t.Helper()
	c, err := ipc.DialWith(addr, ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    30 * time.Second,
		Retries:        3,
		Backoff:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestUpgradeUnderLoad is the acceptance scenario: eight concurrent
// clients keep running programs while the 6-library workload is
// flipped live, one library at a time, each flip a full canary epoch
// committed under traffic — and the client error rate stays under 1%.
// Then a genuinely broken canary is staged: the health gate must trip,
// roll the epoch back automatically (health reports the rollback in
// progress, then the verdict), and leave zero instantiations bound to
// the regressed version — the binding provenance afterwards is
// identical to before the bad epoch.
func TestUpgradeUnderLoad(t *testing.T) {
	sys, err := omos.NewSystemWith(omos.Options{
		// Arm a one-shot rollback fault so the automatic rollback's
		// first attempt stalls: the e2e observes the rolling-back state
		// through health before ordinary traffic nudges it through.
		FaultSpec: "upgrade.rollback:error:n=1:count=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	cg := workload.CodegenParams{Units: 4, FuncsPerUnit: 4, HotIters: 3}
	if err := InstallWorkloads(sys, cg); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ipc.NewServer(New(sys))
	srv.SetFaults(sys.Faults)
	go srv.Serve(l)
	t.Cleanup(srv.Shutdown)
	addr := l.Addr().String()
	ctl := dialUpgrade(t, addr)

	wantExit := func(c *ipc.Client, path string) uint64 {
		t.Helper()
		resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: path})
		if err != nil {
			t.Fatalf("run %s: %v", path, err)
		}
		return resp.ExitCode
	}
	lsExit := wantExit(ctl, "/bin/ls")
	cgExit := wantExit(ctl, "/bin/codegen")

	// Eight concurrent clients hammer the daemon for the whole flip
	// sequence.
	var total, failed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		c := dialUpgrade(t, addr)
		wg.Add(1)
		go func(c *ipc.Client, i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				path := "/bin/ls"
				if i%2 == 0 {
					path = "/bin/codegen"
				}
				resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: path})
				total.Add(1)
				if err != nil || (path == "/bin/ls" && resp.ExitCode != lsExit) ||
					(path == "/bin/codegen" && resp.ExitCode != cgExit) {
					failed.Add(1)
				}
			}
		}(c, i)
	}

	// Flip the six libraries one at a time: full canary epoch, commit
	// under load.  Each v2 is the original source plus a new function —
	// behaviour-identical, content-distinct.
	flip := func(path, blueprint string) {
		t.Helper()
		if _, err := ctl.Call(&ipc.Request{Op: ipc.OpUpgrade, Unit: "start", Text: "100"}); err != nil {
			t.Fatalf("start epoch for %s: %v", path, err)
		}
		if _, err := ctl.Call(&ipc.Request{Op: ipc.OpUpgrade, Unit: "stage",
			Path: path, Text: blueprint, Args: []string{"lib"}}); err != nil {
			t.Fatalf("stage %s: %v", path, err)
		}
		// Let the cohort build v2 under load before committing.
		wantExit(ctl, "/bin/codegen")
		if _, err := ctl.Call(&ipc.Request{Op: ipc.OpUpgrade, Unit: "commit"}); err != nil {
			t.Fatalf("commit %s: %v", path, err)
		}
	}
	libcV2 := strings.TrimSuffix(workload.LibcBlueprint(), ")\n") +
		"  (source \"c\" \"int up_marker_libc(int x) { return x; }\")\n)\n"
	flip("/lib/libc", libcV2)
	for i, lib := range workload.ExtraLibs() {
		flip("/lib/"+lib.Name, upgradeLibBlueprint(i,
			lib.Source+fmt.Sprintf("\nint up_marker_%s(int x) { return x; }\n", lib.Name)))
	}
	close(stop)
	wg.Wait()

	tot, fail := total.Load(), failed.Load()
	if tot == 0 {
		t.Fatal("load clients issued no requests")
	}
	if float64(fail) > 0.01*float64(tot) {
		t.Fatalf("error rate %d/%d exceeds 1%% during live flips", fail, tot)
	}
	if wantExit(ctl, "/bin/ls") != lsExit || wantExit(ctl, "/bin/codegen") != cgExit {
		t.Fatal("behaviour changed across behaviour-identical flips")
	}
	stats := func() string {
		resp, err := ctl.Call(&ipc.Request{Op: ipc.OpStats})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Text
	}
	if st := stats(); !strings.Contains(st, "committed=6") {
		t.Fatalf("stats after flips missing committed=6:\n%s", st)
	}

	// Binding provenance baseline for a symbol the next (broken) epoch
	// will target.
	explainKeys := func() []string {
		resp, err := ctl.Call(&ipc.Request{Op: ipc.OpExplain, Path: "a1_f0"})
		if err != nil {
			t.Fatal(err)
		}
		var keys []string
		for _, line := range strings.Split(resp.Text, "\n") {
			if strings.Contains(line, "definer key") {
				keys = append(keys, strings.TrimSpace(line))
			}
		}
		sort.Strings(keys)
		return keys
	}
	before := explainKeys()
	if len(before) == 0 {
		t.Fatal("no binding provenance for a1_f0 before the regression drill")
	}

	// The regression drill: a canary that cannot link.  The cohort
	// build fails, the gate trips, and the armed fault stalls the first
	// rollback attempt so health exposes the rolling-back state.
	if _, err := ctl.Call(&ipc.Request{Op: ipc.OpUpgrade, Unit: "start", Text: "100"}); err != nil {
		t.Fatal(err)
	}
	broken := upgradeLibBlueprint(0, "extern int missing_up(int);\nint a1_f0(int x) { return missing_up(x); }\n")
	if _, err := ctl.Call(&ipc.Request{Op: ipc.OpUpgrade, Unit: "stage",
		Path: "/lib/liba1", Text: broken, Args: []string{"lib"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/codegen"}); err == nil {
		t.Fatal("regressed canary build succeeded")
	}
	health := func() *ipc.HealthInfo {
		resp, err := ctl.Call(&ipc.Request{Op: ipc.OpHealth})
		if err != nil || resp.Health == nil {
			t.Fatalf("health: %v", err)
		}
		return resp.Health
	}
	if h := health(); !h.UpgradeRollingBack {
		t.Fatalf("health does not report the rollback in progress: %+v", h)
	}
	// Any traffic at all nudges the stalled rollback through.
	wantExit(ctl, "/bin/ls")
	h := health()
	if h.UpgradeActive || h.UpgradeRollingBack {
		t.Fatalf("rollback did not complete: %+v", h)
	}
	if h.UpgradeVerdict == "" {
		t.Fatalf("no verdict after automatic rollback: %+v", h)
	}
	if st := stats(); !strings.Contains(st, "rolled-back=1") {
		t.Fatalf("stats missing rolled-back=1:\n%s", st)
	}

	// Zero post-rollback instantiations bound to the regressed v2: the
	// workload re-instantiates and its provenance is exactly the
	// pre-epoch provenance.
	if wantExit(ctl, "/bin/codegen") != cgExit {
		t.Fatal("post-rollback behaviour drifted")
	}
	after := explainKeys()
	if strings.Join(after, "\n") != strings.Join(before, "\n") {
		t.Fatalf("binding provenance changed across the aborted epoch:\nbefore:\n%s\nafter:\n%s",
			strings.Join(before, "\n"), strings.Join(after, "\n"))
	}
	// The audit trail names the aborted epoch.
	resp, err := ctl.Call(&ipc.Request{Op: ipc.OpExplain, Path: "a1_f0"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "rolled back") {
		t.Fatalf("explain audit missing the rollback:\n%s", resp.Text)
	}
}
