package daemon

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"omos"
	"omos/internal/ipc"
)

// startBatchDaemon serves a fresh system over the wire and returns a
// client plus the system, so tests can inspect server-side stats after
// driving the protocol.
func startBatchDaemon(t *testing.T, opts ipc.Options) (*ipc.Client, *omos.System) {
	t.Helper()
	sys, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ipc.NewServer(New(sys))
	go srv.Serve(l)
	t.Cleanup(srv.Shutdown)
	c, err := ipc.DialWith(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, sys
}

func defineBatchWorkload(t *testing.T, c *ipc.Client) {
	t.Helper()
	if _, err := c.Call(&ipc.Request{Op: ipc.OpDefineLib, Path: "/lib/l",
		Text: `(source "c" "int triple(int x) { return 3 * x; }")`}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(&ipc.Request{Op: ipc.OpDefine, Path: "/bin/t",
		Text: `(merge /lib/crt0.o (source "c" "extern int triple(int); int main() { return triple(14); }") /lib/l)`}); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonBatchInstantiate drives OpInstantiateBatch end to end over
// a v2 connection: per-item results come back positionally, a bogus
// name fails only its own item, and a subsequent run hits the warmed
// image cache.
func TestDaemonBatchInstantiate(t *testing.T) {
	c, sys := startBatchDaemon(t, ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    30 * time.Second,
	})
	defineBatchWorkload(t, c)

	if v := c.ProtocolVersion(); v != ipc.ProtoV2 {
		t.Fatalf("protocol = %d, want v2", v)
	}
	res, err := c.InstantiateBatch([]string{"/bin/t", "/lib/l", "/bogus/none"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results for 3 items", len(res))
	}
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("healthy items failed: %v / %v", res[0].Err, res[1].Err)
	}
	if res[2].Err == nil {
		t.Fatal("bogus item did not fail")
	}
	if res[2].Path != "/bogus/none" {
		t.Fatalf("result 2 path = %q, want the bogus item", res[2].Path)
	}

	built := sys.Srv.Stats().ImagesBuilt
	resp, err := c.Call(&ipc.Request{Op: ipc.OpRun, Path: "/bin/t"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", resp.ExitCode)
	}
	if after := sys.Srv.Stats().ImagesBuilt; after != built {
		t.Fatalf("run after batch rebuilt images: %d -> %d (cache not warmed)", built, after)
	}
}

// TestDaemonBatchAggregatedV1 proves the same op works against a
// legacy connection: one aggregated reply instead of streamed
// per-item completions.
func TestDaemonBatchAggregatedV1(t *testing.T) {
	c, _ := startBatchDaemon(t, ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    30 * time.Second,
		ForceV1:        true,
	})
	defineBatchWorkload(t, c)

	res, err := c.InstantiateBatch([]string{"/bin/t", "/missing"})
	if err != nil {
		t.Fatal(err)
	}
	if v := c.ProtocolVersion(); v != ipc.ProtoV1 {
		t.Fatalf("protocol = %d, want v1", v)
	}
	if res[0].Err != nil {
		t.Fatalf("item 0: %v", res[0].Err)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "missing") {
		t.Fatalf("item 1 error = %v, want a not-found error", res[1].Err)
	}
}

// TestDaemonBatchConcurrentWithCalls interleaves a batch with pipelined
// single calls on the same connection: the batch's streamed completions
// and the singles' tagged responses share one wire without cross-talk.
func TestDaemonBatchConcurrentWithCalls(t *testing.T) {
	c, _ := startBatchDaemon(t, ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    30 * time.Second,
	})
	defineBatchWorkload(t, c)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := c.InstantiateBatch([]string{"/bin/t", "/lib/l"})
		if err != nil {
			errs <- err
			return
		}
		for _, r := range res {
			if r.Err != nil {
				errs <- r.Err
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Call(&ipc.Request{Op: ipc.OpDisasm, Path: "/lib/crt0.o"})
			if err != nil {
				errs <- err
				return
			}
			if resp.Text == "" {
				errs <- errors.New("empty disasm response")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
