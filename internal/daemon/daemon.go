// Package daemon adapts an omos.System to the ipc.Backend protocol
// and installs the evaluation workloads — the testable core of
// cmd/omosd.
package daemon

import (
	"context"
	"fmt"
	"strings"
	"time"

	"omos"
	"omos/internal/ipc"
	"omos/internal/mesh"
	"omos/internal/obj"
	"omos/internal/vm"
	"omos/internal/workload"
)

// Backend serves the OMOS daemon protocol over an omos.System.
type Backend struct {
	Sys *omos.System
	// Mesh federates this daemon into a mesh (nil outside one); set it
	// before serving traffic.
	Mesh  *mesh.Node
	start time.Time
}

var (
	_ ipc.Backend        = (*Backend)(nil)
	_ ipc.HealthBackend  = (*Backend)(nil)
	_ ipc.GraphBackend   = (*Backend)(nil)
	_ ipc.BatchBackend   = (*Backend)(nil)
	_ ipc.ExplainBackend = (*Backend)(nil)
	_ ipc.RebindBackend  = (*Backend)(nil)
	_ ipc.UpgradeBackend = (*Backend)(nil)
	_ ipc.MeshBackend    = (*Backend)(nil)
)

// New wraps a system.
func New(sys *omos.System) *Backend { return &Backend{Sys: sys, start: time.Now()} }

// InstallWorkloads preinstalls the evaluation workloads (/bin/ls,
// /bin/codegen, /lib/libc plus codegen's auxiliary libraries) and the
// filesystem fixtures.
func InstallWorkloads(sys *omos.System, cg workload.CodegenParams) error {
	if err := workload.MakeFixtures(sys.Kern.FS); err != nil {
		return err
	}
	if err := sys.DefineLibrary("/lib/libc", workload.LibcBlueprint()); err != nil {
		return err
	}
	libBase := uint64(0x0200_0000)
	for i, lib := range workload.ExtraLibs() {
		bp := fmt.Sprintf("(constraint-list \"T\" %#x \"D\" %#x)\n(merge (source \"c\" %q))",
			libBase+uint64(i)*0x40_0000, 0x4200_0000+uint64(i)*0x40_0000, lib.Source)
		if err := sys.DefineLibrary("/lib/"+lib.Name, bp); err != nil {
			return err
		}
	}
	if err := sys.Define("/bin/ls",
		fmt.Sprintf("(merge /lib/crt0.o (source \"c\" %q) /lib/libc)", workload.LsSource)); err != nil {
		return err
	}
	return sys.Define("/bin/codegen", workload.CodegenBlueprint(cg))
}

// Define implements ipc.Backend.
func (b *Backend) Define(path, bp string) error { return b.Sys.Define(path, bp) }

// DefineLibrary implements ipc.Backend.
func (b *Backend) DefineLibrary(path, bp string) error { return b.Sys.DefineLibrary(path, bp) }

// PutObjectBytes implements ipc.Backend.
func (b *Backend) PutObjectBytes(path string, rof []byte) error {
	o, err := obj.Decode(rof)
	if err != nil {
		return err
	}
	return b.Sys.PutObject(path, o)
}

// AssembleTo implements ipc.Backend.
func (b *Backend) AssembleTo(path, src string) error { return b.Sys.Assemble(path, src) }

// CompileTo implements ipc.Backend.
func (b *Backend) CompileTo(dir, unit, src string) ([]string, error) {
	return b.Sys.CompileC(dir, unit, src)
}

// List implements ipc.Backend.
func (b *Backend) List(prefix string) []string { return b.Sys.List(prefix) }

// Remove implements ipc.Backend.
func (b *Backend) Remove(path string) { b.Sys.Srv.Remove(path) }

// DefineAllow implements ipc.RebindBackend: Define carrying the
// request's explicit-rebind flag through to the server's guard.
func (b *Backend) DefineAllow(path, bp string, allow bool) error {
	return b.Sys.Srv.DefineAllow(path, bp, allow)
}

// DefineLibraryAllow implements ipc.RebindBackend.
func (b *Backend) DefineLibraryAllow(path, bp string, allow bool) error {
	return b.Sys.Srv.DefineLibraryAllow(path, bp, allow)
}

// RemoveAllow implements ipc.RebindBackend.
func (b *Backend) RemoveAllow(path string, allow bool) error {
	return b.Sys.Srv.RemoveAllow(path, allow)
}

// Explain implements ipc.ExplainBackend: the binding audit trail
// behind `omos explain`.
func (b *Backend) Explain(sym string) (string, error) {
	return b.Sys.Srv.Explain(sym)
}

// UpgradeStart implements ipc.UpgradeBackend.
func (b *Backend) UpgradeStart(canaryPct int) (string, error) {
	return b.Sys.Srv.UpgradeStart(canaryPct)
}

// UpgradeStage implements ipc.UpgradeBackend.
func (b *Backend) UpgradeStage(path, bp string, isLib bool) error {
	return b.Sys.Srv.UpgradeStage(path, bp, isLib)
}

// UpgradeCommit implements ipc.UpgradeBackend.
func (b *Backend) UpgradeCommit() error { return b.Sys.Srv.UpgradeCommit() }

// UpgradeRollback implements ipc.UpgradeBackend.
func (b *Backend) UpgradeRollback(reason string) error {
	return b.Sys.Srv.UpgradeRollback(reason)
}

// UpgradeStatus implements ipc.UpgradeBackend.
func (b *Backend) UpgradeStatus() (string, bool) {
	return b.Sys.Srv.UpgradeStatsLine(), b.Sys.Srv.UpgradeStatus().Active
}

// Run implements ipc.Backend.
func (b *Backend) Run(name string, args []string, bootstrap bool) (ipc.RunOutcome, error) {
	var res *omos.RunResult
	var err error
	if bootstrap {
		res, err = b.Sys.RunBootstrap(name, args)
	} else {
		res, err = b.Sys.Run(name, args)
	}
	if err != nil {
		return ipc.RunOutcome{}, err
	}
	return ipc.RunOutcome{
		ExitCode: res.ExitCode,
		Output:   res.Output,
		User:     res.Clock.User,
		Sys:      res.Clock.Sys,
		Server:   res.Clock.Server,
		Wait:     res.Clock.Wait,
	}, nil
}

// InstantiateBatch implements ipc.BatchBackend: OpInstantiateBatch
// fans the named meta-objects into the server's build executor,
// warming the image cache without running anything.  Per-item
// completions reach done as they land; on a v2 connection the
// transport streams each one back immediately.
func (b *Backend) InstantiateBatch(paths []string, done func(i int, err error)) {
	b.Sys.Srv.InstantiateBatch(context.Background(), paths, nil, done)
}

// Disasm implements ipc.Backend.
func (b *Backend) Disasm(path string) (string, error) {
	o, err := b.Sys.Srv.GetObject(path)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(o.String())
	sb.WriteString("\n")
	sb.WriteString(vm.Disassemble(o.Text, 0))
	return sb.String(), nil
}

// ExportMeta implements ipc.Backend (namespace federation).
func (b *Backend) ExportMeta(path string) (string, bool, error) {
	return b.Sys.Srv.ExportMeta(path)
}

// ExportObject implements ipc.Backend (namespace federation).
func (b *Backend) ExportObject(path string) ([]byte, error) {
	return b.Sys.Srv.ExportObject(path)
}

// errNoMesh answers mesh operations on a daemon that is not federated.
var errNoMesh = fmt.Errorf("daemon is not in a mesh")

// MeshFetch implements ipc.MeshBackend.
func (b *Backend) MeshFetch(req *ipc.MeshReq) (*ipc.MeshInfo, []byte, error) {
	if b.Mesh == nil {
		return nil, nil, errNoMesh
	}
	return b.Mesh.AcceptFetch(req)
}

// MeshPut implements ipc.MeshBackend.
func (b *Backend) MeshPut(req *ipc.MeshReq) error {
	if b.Mesh == nil {
		return errNoMesh
	}
	return b.Mesh.AcceptPut(req)
}

// MeshGossip implements ipc.MeshBackend.
func (b *Backend) MeshGossip(req *ipc.MeshReq) (*ipc.MeshInfo, error) {
	if b.Mesh == nil {
		return nil, errNoMesh
	}
	return b.Mesh.AcceptGossip(req)
}

// MeshRebalance implements ipc.MeshBackend.
func (b *Backend) MeshRebalance(req *ipc.MeshReq) (*ipc.MeshInfo, error) {
	if b.Mesh == nil {
		return nil, errNoMesh
	}
	return b.Mesh.AcceptRebalance(req)
}

// Fetcher adapts an ipc.Client to server.RemoteFetcher, letting one
// OMOS server mount another's namespace over the wire.
type Fetcher struct {
	C *ipc.Client
}

// FetchMeta implements server.RemoteFetcher.
func (f Fetcher) FetchMeta(path string) (string, bool, error) {
	resp, err := f.C.Call(&ipc.Request{Op: ipc.OpGetMeta, Path: path})
	if err != nil {
		return "", false, err
	}
	return resp.Text, resp.Flag, nil
}

// FetchObject implements server.RemoteFetcher.
func (f Fetcher) FetchObject(path string) ([]byte, error) {
	resp, err := f.C.Call(&ipc.Request{Op: ipc.OpGetObject, Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// Health implements ipc.HealthBackend: the liveness and robustness
// counters behind omosd -health.  The transport adds its own
// recovered-panic count and the draining flag.
func (b *Backend) Health() ipc.HealthInfo {
	st := b.Sys.Srv.Stats()
	degraded, reason := b.Sys.Srv.Degraded()
	up := b.Sys.Srv.UpgradeStatus()
	verdict := up.Verdict
	if !up.Active {
		verdict = up.LastAborted
	}
	hi := ipc.HealthInfo{
		UptimeMS:           uint64(time.Since(b.start).Milliseconds()),
		InflightBuilds:     b.Sys.Srv.InflightBuilds(),
		Recovered:          st.Recovered,
		Quarantined:        st.StoreQuarantined,
		WarmLoaded:         st.WarmLoaded,
		Degraded:           degraded,
		DegradedReason:     reason,
		QueueDepth:         b.Sys.Srv.Admission().Queued(),
		Shed:               st.Shed,
		BuildTimeouts:      st.BuildTimeouts,
		ScrubChecked:       st.ScrubChecked,
		ScrubQuarantined:   st.ScrubQuarantined,
		NodesBuilt:         st.NodesBuilt,
		NodesResumed:       st.NodesResumed,
		NodesCheckpointed:  st.NodesCheckpointed,
		CheckpointBytes:    st.CheckpointBytes,
		UpgradeActive:      up.Active,
		UpgradeEpoch:       up.Epoch,
		UpgradeCanaryPct:   up.CanaryPct,
		UpgradeRollingBack: up.RollingBack,
		UpgradeVerdict:     verdict,
	}
	if b.Mesh != nil {
		b.Mesh.Health(&hi)
	}
	return hi
}

// Graph implements ipc.GraphBackend: the build-graph report behind
// `omos graph` and omosd -graph.
func (b *Backend) Graph() string { return b.Sys.Srv.GraphReport() }

// Stats implements ipc.Backend.
func (b *Backend) Stats() string {
	st := b.Sys.MemStats()
	srv := b.Sys.Srv.Stats()
	return fmt.Sprintf(
		"cache: hits=%d misses=%d images=%d relocs=%d buildcycles=%d\n"+
			"rebase: slides=%d misses=%d patches=%d dirty-pages=%d shared-pages=%d\n"+
			"memory: frames=%d resident=%dKB shared-frames=%d saved=%dKB\n"+
			"store: warm-loaded=%d loads=%d stores=%d evictions=%d corrupt=%d bytes=%d\n"+
			"graph: built=%d cached=%d resumed=%d failed=%d checkpoints=%d ckpt-failed=%d ckpt-bytes=%d\n"+
			"resolve: searches=%d hits=%d misses=%d invalidations=%d pin-violations=%d rebinds-blocked=%d rebinds-allowed=%d\n",
		srv.CacheHits, srv.CacheMisses, srv.ImagesBuilt, srv.RelocsApplied, srv.BuildCycles,
		srv.Rebases, srv.RebaseMiss, srv.RebasePatches, srv.RebaseDirtyPages, srv.RebaseSharedPages,
		st.Frames, st.Bytes()/1024, st.SharedFrames, st.SavedBytes()/1024,
		srv.WarmLoaded, srv.StoreLoads, srv.StoreStores, srv.StoreEvictions, srv.StoreCorrupt, srv.StoreBytes,
		srv.NodesBuilt, srv.NodesCached, srv.NodesResumed, srv.NodesFailed,
		srv.NodesCheckpointed, srv.CheckpointsFailed, srv.CheckpointBytes,
		srv.SymbolSearches, srv.BindingHits, srv.BindingMisses, srv.BindingInvalidations,
		srv.PinViolations, srv.RebindsBlocked, srv.RebindsAllowed) +
		b.Sys.Srv.UpgradeStatsLine() + "\n" + b.meshLine()
}

// meshLine renders the mesh stats line (empty outside a mesh).
func (b *Backend) meshLine() string {
	if b.Mesh == nil {
		return ""
	}
	return b.Mesh.StatsLine() + "\n"
}
