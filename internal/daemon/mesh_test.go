package daemon

// End-to-end tests of the federated daemon mesh: consistent-hash
// sharded content, metadata-only peer rebase vs blob streaming,
// anti-entropy gossip, shard rebalance (including a mid-rebalance
// crash), per-peer overload/breaker isolation, and peer auth.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"omos"
	"omos/internal/ipc"
	"omos/internal/mesh"
)

// defineMeshWorkload installs `progs` shared libraries at fixed fleet
// placements plus one program per library.  Identical sources on every
// daemon yield identical content keys, which is what makes the mesh's
// cross-daemon reuse sound.
func defineMeshWorkload(t *testing.T, sys *omos.System, progs int) {
	t.Helper()
	for i := 0; i < progs; i++ {
		lib := fmt.Sprintf(`(constraint-list "T" %#x "D" %#x)
(source "c" "int mul%d(int x) { return x * %d; }")`,
			0x3000000+uint64(i)*0x100000, 0x43000000+uint64(i)*0x100000, i, i+2)
		if err := sys.DefineLibrary(fmt.Sprintf("/lib/mm%d", i), lib); err != nil {
			t.Fatal(err)
		}
		if err := sys.Define(fmt.Sprintf("/bin/mp%d", i), meshProgBP(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func meshProgBP(i int) string {
	return fmt.Sprintf(`(merge /lib/crt0.o (source "c" "extern int mul%d(int); int main() { return mul%d(10); }") /lib/mm%d)`,
		i, i, i)
}

func runMeshProg(t *testing.T, sys *omos.System, path string, want int) {
	t.Helper()
	res, err := sys.Run(path, nil)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if res.ExitCode != uint64(want) {
		t.Fatalf("%s: exit = %d, want %d", path, res.ExitCode, want)
	}
}

// TestMeshFourDaemons is the mesh smoke: four daemons share the ring,
// daemon 0 builds the workload, and every other daemon's placement
// misses are served over the wire — bytes streamed on first contact,
// metadata-only rebases once a local variant exists.
func TestMeshFourDaemons(t *testing.T) {
	const nD, nP = 4, 3
	secret := "mesh-smoke"
	syss := make([]*omos.System, nD)
	nodes := make([]*mesh.Node, nD)
	addrs := make([]string, nD)
	for i := range syss {
		sys, err := omos.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		syss[i] = sys
		nodes[i], _, addrs[i] = startMeshMember(t, sys, mesh.Config{Secret: secret})
	}
	for i, n := range nodes {
		for j, a := range addrs {
			if j != i {
				n.AddPeer(a)
			}
		}
	}
	for i := range syss {
		defineMeshWorkload(t, syss[i], nP)
	}

	// Daemon 0 builds everything cold and offers each record to its
	// ring owner; the rest of the fleet then never relinks any of it.
	for p := 0; p < nP; p++ {
		runMeshProg(t, syss[0], fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
	}
	for i := 1; i < nD; i++ {
		for p := 0; p < nP; p++ {
			runMeshProg(t, syss[i], fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
		}
	}
	// Placement variants: the same program bodies at fresh namespace
	// paths force new placements of content every daemon now holds —
	// the metadata-only peer rebase path.
	for i := 0; i < nD; i++ {
		for p := 0; p < nP; p++ {
			path := fmt.Sprintf("/bin/mp%dv", p)
			if err := syss[i].Define(path, meshProgBP(p)); err != nil {
				t.Fatal(err)
			}
			runMeshProg(t, syss[i], path, 10*(p+2))
		}
	}

	var fetches, meta, blob, fallbacks uint64
	for i := range syss {
		st := syss[i].Srv.Stats()
		fetches += st.MeshFetches
		meta += st.MeshMetaRebases
		blob += st.MeshBlobInstalls
		fallbacks += st.MeshFallbacks
	}
	if fetches == 0 {
		t.Fatal("no placement miss ever consulted a ring owner")
	}
	if blob == 0 {
		t.Fatal("no remote miss streamed the owner's bytes")
	}
	if meta == 0 {
		t.Fatal("no placement variant used the metadata-only peer rebase")
	}
	if fetches != meta+blob+fallbacks {
		t.Fatalf("fetch accounting: %d fetches != %d meta + %d blob + %d fallbacks",
			fetches, meta, blob, fallbacks)
	}

	// Gossip runs clean on a converged fleet, and the mesh shows up in
	// the wire-level stats and health reports.
	if _, err := nodes[0].GossipTick(); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	c, err := ipc.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sres, err := c.Call(&ipc.Request{Op: ipc.OpStats})
	if err != nil || !strings.Contains(sres.Text, "mesh: self=") {
		t.Fatalf("stats missing mesh line: %v\n%s", err, sres.Text)
	}
	hres, err := c.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || hres.Health == nil {
		t.Fatalf("health: %v", err)
	}
	h := hres.Health
	if h.MeshShards != nD || h.MeshPeers != nD-1 || h.MeshGossipRounds == 0 {
		t.Fatalf("mesh health = shards %d peers %d gossip %d, want %d/%d/>0",
			h.MeshShards, h.MeshPeers, h.MeshGossipRounds, nD, nD-1)
	}
}

// TestMeshJoinGossipConverges: a daemon that built its whole shard
// alone joins a peer; one gossip round pushes exactly the content the
// new ring assigns to the peer, and rebalance moves the same set.
func TestMeshJoinGossipConverges(t *testing.T) {
	sysA, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	nodeA, _, addrA := startMeshMember(t, sysA, mesh.Config{Secret: "join"})
	sysB, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	nodeB, _, addrB := startMeshMember(t, sysB, mesh.Config{Secret: "join"})

	// A builds alone (single-member ring: everything is local).
	defineMeshWorkload(t, sysA, 3)
	for p := 0; p < 3; p++ {
		runMeshProg(t, sysA, fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
	}
	nodeA.AddPeer(addrB)
	nodeB.AddPeer(addrA)

	// The reference ring predicts the post-join owner of every key.
	ref := mesh.NewRing(0)
	ref.Add(addrA)
	ref.Add(addrB)
	owned := map[string]bool{}
	for _, ck := range sysA.Srv.ContentKeys() {
		if ref.Owner(ck) == addrB {
			owned[ck] = true
		}
	}

	pushed, err := nodeA.GossipTick()
	if err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if pushed != len(owned) {
		t.Fatalf("gossip pushed %d keys, new peer owns %d", pushed, len(owned))
	}
	held := nodeB.HeldKeys()
	if len(held) != len(owned) {
		t.Fatalf("peer holds %d keys, owns %d", len(held), len(owned))
	}
	for _, ck := range held {
		if !owned[ck] {
			t.Fatalf("peer holds %s which it does not own", ck)
		}
	}
	// A second round finds nothing missing.
	if pushed, err := nodeA.GossipTick(); err != nil || pushed != 0 {
		t.Fatalf("second gossip round: pushed %d, err %v", pushed, err)
	}
	// Rebalance re-copies the same shard (idempotent by construction).
	if moved, err := nodeA.Rebalance(); err != nil || moved != len(owned) {
		t.Fatalf("rebalance moved %d, want %d (err %v)", moved, len(owned), err)
	}
}

// TestMeshOwnerDownLocalBuild: a dead peer owns a slice of the
// keyspace; every consult of it degrades to the local build path and
// the workload stays fully available and correct.
func TestMeshOwnerDownLocalBuild(t *testing.T) {
	sysB, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	nodeB, _, _ := startMeshMember(t, sysB, mesh.Config{Secret: "down"})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	nodeB.AddPeer(dead)

	defineMeshWorkload(t, sysB, 4)
	for p := 0; p < 4; p++ {
		runMeshProg(t, sysB, fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
	}
	st := sysB.Srv.Stats()
	if st.MeshFetches != st.MeshFallbacks {
		t.Fatalf("dead owner: %d fetches but %d fallbacks", st.MeshFetches, st.MeshFallbacks)
	}
	if up, total := nodeB.PeersUp(); total != 1 || up != 0 {
		t.Fatalf("peers up = %d/%d, want 0/1", up, total)
	}
}

// TestMeshSlowPeerBreaker: a slow owner backs up its per-peer
// admission slot; the peer's fetches shed, the shed trips the
// requester's per-peer circuit breaker (fail-fast), and a successful
// exchange closes it again.
func TestMeshSlowPeerBreaker(t *testing.T) {
	sysA, err := omos.NewSystemWith(omos.Options{
		FaultSpec: "mesh.peer-fetch:delay:p=1:delay=300ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, addrA := startMeshMember(t, sysA, mesh.Config{
		Secret:          "slow",
		Faults:          sysA.Faults,
		PeerMaxInflight: 1,
		PeerQueueDepth:  1,
	})
	c, err := ipc.DialWith(addrA, ipc.Options{
		ConnectTimeout: 2 * time.Second,
		CallTimeout:    10 * time.Second,
		MeshSecret:     "slow",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two long fetches occupy the slot and the queue for 300ms each.
	ctx := context.Background()
	occupied := make([]error, 2)
	var wg sync.WaitGroup
	for j := 0; j < 2; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			_, _, occupied[j] = c.MeshFetch(ctx, &ipc.MeshReq{From: "jam", CKey: fmt.Sprintf("occupy-%d", j)})
		}(j)
	}
	time.Sleep(100 * time.Millisecond)

	// Every fetch during the jam is shed or breaker-blocked.
	sawOpen := false
	for k := 0; k < 6; k++ {
		_, _, err := c.MeshFetch(ctx, &ipc.MeshReq{From: "jam", CKey: "probe"})
		if !errors.Is(err, ipc.ErrOverloaded) {
			t.Fatalf("fetch during jam: err = %v, want overload", err)
		}
		if c.BreakerOpen() {
			sawOpen = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawOpen {
		t.Fatal("per-peer breaker never opened under repeated sheds")
	}

	// The slow fetches themselves were delayed, not broken...
	wg.Wait()
	if occupied[0] != nil || occupied[1] != nil {
		t.Fatalf("occupying fetches failed: %v / %v", occupied[0], occupied[1])
	}
	// ...and their success closed the breaker again.
	if c.BreakerOpen() {
		t.Fatal("breaker still open after the peer recovered")
	}
}

// TestMeshRebalanceCrashConsistency: a rebalance interrupted partway
// (injected push faults, then both daemons go down) must leave both
// shards correct at warm restart, and a rerun finishes the move.
func TestMeshRebalanceCrashConsistency(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sysA, err := omos.NewSystemWith(omos.Options{
		StoreDir:  dirA,
		FaultSpec: "mesh.rebalance:error:n=2:count=2",
	})
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := omos.NewSystemWith(omos.Options{StoreDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	nodeA, srvA, addrA := startMeshMember(t, sysA, mesh.Config{Secret: "crash", Faults: sysA.Faults})
	nodeB, srvB, addrB := startMeshMember(t, sysB, mesh.Config{Secret: "crash"})

	defineMeshWorkload(t, sysA, 3)
	for p := 0; p < 3; p++ {
		runMeshProg(t, sysA, fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
	}
	nodeA.AddPeer(addrB)
	nodeB.AddPeer(addrA)
	ref := mesh.NewRing(0)
	ref.Add(addrA)
	ref.Add(addrB)
	owned := 0
	for _, ck := range sysA.Srv.ContentKeys() {
		if ref.Owner(ck) == addrB {
			owned++
		}
	}

	// The armed budget interrupts the rebalance partway through: some
	// pushes land, some are skipped.  Nothing is deleted either way.
	moved, err := nodeA.Rebalance()
	if err != nil {
		t.Fatalf("interrupted rebalance: %v", err)
	}
	if owned > 0 && moved >= owned {
		t.Fatalf("fault budget did not interrupt the rebalance (%d/%d moved)", moved, owned)
	}
	if held := nodeB.HeldKeys(); len(held) != moved {
		t.Fatalf("peer holds %d keys after %d successful pushes", len(held), moved)
	}

	// Crash both daemons mid-move.
	nodeA.Close()
	nodeB.Close()
	srvA.Shutdown()
	srvB.Shutdown()
	if err := sysA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sysB.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm restart on the same stores, no faults: both shards must
	// serve the full workload correctly.
	sysA2, err := omos.NewSystemWith(omos.Options{StoreDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	sysB2, err := omos.NewSystemWith(omos.Options{StoreDir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	nodeA2, _, addrA2 := startMeshMember(t, sysA2, mesh.Config{Secret: "crash"})
	nodeB2, _, addrB2 := startMeshMember(t, sysB2, mesh.Config{Secret: "crash"})
	nodeA2.AddPeer(addrB2)
	nodeB2.AddPeer(addrA2)
	defineMeshWorkload(t, sysA2, 3)
	defineMeshWorkload(t, sysB2, 3)
	for p := 0; p < 3; p++ {
		runMeshProg(t, sysA2, fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
		runMeshProg(t, sysB2, fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
	}

	// The resumed rebalance completes: afterwards every key the new
	// ring assigns to B is either held by or live on B.
	if _, err := nodeA2.Rebalance(); err != nil {
		t.Fatalf("resumed rebalance: %v", err)
	}
	ref2 := mesh.NewRing(0)
	ref2.Add(addrA2)
	ref2.Add(addrB2)
	heldB := map[string]bool{}
	for _, ck := range nodeB2.HeldKeys() {
		heldB[ck] = true
	}
	for _, ck := range sysA2.Srv.ContentKeys() {
		if ref2.Owner(ck) != addrB2 {
			continue
		}
		if !heldB[ck] && !sysB2.Srv.HasVariant(ck) {
			t.Fatalf("key %s owned by B is on neither shard after resumed rebalance", ck)
		}
	}
	if err := sysA2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sysB2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMeshAnnounceMergesConcurrentJoins: two daemons that each believe
// the mesh is {self, B, C} announce membership concurrently.  The
// epoch-versioned announce detects the conflict at the shared peers
// and the losing announcer re-announces the union, so every ring
// converges on all four members — no live member is silently dropped
// by whichever announce happened to arrive last.
func TestMeshAnnounceMergesConcurrentJoins(t *testing.T) {
	const nD = 4
	nodes := make([]*mesh.Node, nD)
	addrs := make([]string, nD)
	for i := 0; i < nD; i++ {
		sys, err := omos.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], _, addrs[i] = startMeshMember(t, sys, mesh.Config{Secret: "announce"})
	}
	a, b, c, d := 0, 1, 2, 3
	nodes[a].AddPeer(addrs[b])
	nodes[a].AddPeer(addrs[c])
	nodes[d].AddPeer(addrs[b])
	nodes[d].AddPeer(addrs[c])

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, n := range []*mesh.Node{nodes[a], nodes[d]} {
		wg.Add(1)
		go func(i int, n *mesh.Node) {
			defer wg.Done()
			errs[i] = n.AnnounceMembership()
		}(i, n)
	}
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("announce errors: %v / %v", errs[0], errs[1])
	}
	for i, n := range nodes {
		members := n.Members()
		if len(members) != nD {
			t.Fatalf("node %d membership after racing announces = %v, want all %d members",
				i, members, nD)
		}
	}
}

// TestMeshHoldBytesBounded: the hold area is bounded by total encoded
// bytes, not just record count, and gossip declines re-offering keys
// it just evicted for capacity — otherwise the mesh would churn the
// same blobs over the wire every anti-entropy round.
func TestMeshHoldBytesBounded(t *testing.T) {
	sysA, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defineMeshWorkload(t, sysA, 2)
	for p := 0; p < 2; p++ {
		runMeshProg(t, sysA, fmt.Sprintf("/bin/mp%d", p), 10*(p+2))
	}
	keys := sysA.Srv.ContentKeys()
	if len(keys) < 2 {
		t.Fatalf("workload produced %d content keys, need 2", len(keys))
	}
	blobs := make([][]byte, 2)
	maxLen := 0
	for i := 0; i < 2; i++ {
		blob, _, ok := sysA.Srv.ExportContent(keys[i], false)
		if !ok {
			t.Fatalf("content key %s not exportable", keys[i])
		}
		blobs[i] = blob
		if len(blob) > maxLen {
			maxLen = len(blob)
		}
	}

	// A hold area sized for one record at a time.
	sysB, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := mesh.New(sysB.Srv, mesh.Config{Self: "hold-test", HoldMaxBytes: maxLen})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nodeB.Close)

	if err := nodeB.AcceptPut(&ipc.MeshReq{From: "a", CKey: keys[0], Blob: blobs[0]}); err != nil {
		t.Fatal(err)
	}
	if held := nodeB.HeldKeys(); len(held) != 1 || held[0] != keys[0] {
		t.Fatalf("holds after first put = %v", held)
	}
	// The second record does not fit next to the first: the byte bound
	// evicts the oldest.
	if err := nodeB.AcceptPut(&ipc.MeshReq{From: "a", CKey: keys[1], Blob: blobs[1]}); err != nil {
		t.Fatal(err)
	}
	if held := nodeB.HeldKeys(); len(held) != 1 || held[0] != keys[1] {
		t.Fatalf("holds after second put = %v, want just %s (byte bound not enforced)", held, keys[1])
	}
	// A gossip offer of both keys wants neither: one is held, the other
	// was just evicted for capacity and re-requesting it would churn.
	info, err := nodeB.AcceptGossip(&ipc.MeshReq{From: "a", Keys: []string{keys[0], keys[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Want) != 0 {
		t.Fatalf("gossip re-requests evicted keys: want list = %v", info.Want)
	}
	// The decline is targeted: a never-seen key is still wanted.
	info, err = nodeB.AcceptGossip(&ipc.MeshReq{From: "a", Keys: []string{"fresh-key"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Want) != 1 || info.Want[0] != "fresh-key" {
		t.Fatalf("fresh key not wanted: %v", info.Want)
	}
}

// TestMeshAuthReject: mesh operations need the HMAC hello proof when
// the daemon has a mesh secret; ordinary client traffic does not.
func TestMeshAuthReject(t *testing.T) {
	sysA, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	_, _, addrA := startMeshMember(t, sysA, mesh.Config{Secret: "right"})
	ctx := context.Background()

	for _, secret := range []string{"", "wrong"} {
		c, err := ipc.DialWith(addrA, ipc.Options{MeshSecret: secret})
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = c.MeshFetch(ctx, &ipc.MeshReq{From: "x", CKey: "k"})
		if err == nil || !strings.Contains(err.Error(), "not authenticated") {
			t.Fatalf("mesh fetch with secret %q: err = %v, want auth rejection", secret, err)
		}
		// Only mesh ops are gated: the same connection still serves
		// ordinary client traffic.
		if _, err := c.Call(&ipc.Request{Op: ipc.OpStats}); err != nil {
			t.Fatalf("stats on unauthenticated conn: %v", err)
		}
		c.Close()
	}

	c, err := ipc.DialWith(addrA, ipc.Options{MeshSecret: "right"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	info, _, err := c.MeshFetch(ctx, &ipc.MeshReq{From: "x", CKey: "k"})
	if err != nil {
		t.Fatalf("authenticated mesh fetch: %v", err)
	}
	if info.Found {
		t.Fatal("unknown content key reported found")
	}
}
