package minic

import (
	"strings"
	"testing"

	"omos/internal/asm"
	"omos/internal/jigsaw"
	"omos/internal/link"
	"omos/internal/osim"
)

// crt0 provides _start for test programs.
const crt0 = `
.text
_start:
    call main
    mov r1, r0
    sys 1
`

// compileRun compiles src (plus optional extra units), links with
// crt0, runs, and returns the exit code and console output.
func compileRun(t *testing.T, pic bool, srcs ...string) (uint64, string) {
	t.Helper()
	mods := []*jigsaw.Module{}
	crt, err := asmModule(crt0)
	if err != nil {
		t.Fatal(err)
	}
	mods = append(mods, crt)
	for i, src := range srcs {
		objs, err := Compile(src, Options{Unit: unitName(i), PIC: pic})
		if err != nil {
			t.Fatal(err)
		}
		m, err := jigsaw.NewModule(objs...)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	m, err := jigsaw.Merge(mods...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.Link(m, link.Options{
		Name: "test", TextBase: 0x100000, DataBase: 0x40000000, Entry: "_start",
	})
	if err != nil {
		t.Fatal(err)
	}
	k := osim.NewKernel()
	p := k.Spawn()
	for i := range res.Image.Segments {
		s := &res.Image.Segments[i]
		if err := p.MapPrivateBytes(s.Addr, s.Data, s.MemSize, s.Perm, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.SetupStack(nil); err != nil {
		t.Fatal(err)
	}
	p.CPU.PC = res.Image.Entry
	code, err := k.RunToExit(p)
	if err != nil {
		t.Fatal(err)
	}
	return code, p.Output.String()
}

func unitName(i int) string { return string(rune('a'+i)) + ".c" }

func asmModule(src string) (*jigsaw.Module, error) {
	o, err := asm.Assemble("crt0.s", src)
	if err != nil {
		return nil, err
	}
	return jigsaw.NewModule(o)
}

func TestArithmetic(t *testing.T) {
	code, _ := compileRun(t, false, `
int main() {
    int x = 10;
    int y = 4;
    return x * y + (x - y) / 2 - (x % y);
}
`)
	if code != 41 {
		t.Fatalf("exit = %d, want 41", code)
	}
}

func TestControlFlow(t *testing.T) {
	code, _ := compileRun(t, false, `
int main() {
    int i = 0;
    int sum = 0;
    while (i < 100) {
        if (i % 2 == 0) { sum = sum + i; }
        i = i + 1;
        if (i >= 50) { break; }
    }
    return sum;
}
`)
	// sum of even numbers < 50 = 0+2+...+48 = 600
	if code != 600 {
		t.Fatalf("exit = %d, want 600", code)
	}
}

func TestGlobalsArraysPointers(t *testing.T) {
	code, _ := compileRun(t, false, `
int table[10];
int total = 0;
char msg[] = "hi";

int fill(int n) {
    int i = 0;
    while (i < n) { table[i] = i * i; i = i + 1; }
    return n;
}

int main() {
    int i = 0;
    int *p;
    fill(10);
    p = &table[3];
    total = *p + p[1];     /* 9 + 16 */
    return total + msg[0]; /* + 'h' (104) */
}
`)
	if code != 9+16+104 {
		t.Fatalf("exit = %d, want %d", code, 9+16+104)
	}
}

func TestShortCircuit(t *testing.T) {
	code, _ := compileRun(t, false, `
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
    int a = 0 && bump();   /* bump not called */
    int b = 1 || bump();   /* bump not called */
    int c = 1 && bump();   /* called */
    int d = 0 || bump();   /* called */
    return calls * 10 + a + b + c + d;
}
`)
	// calls=2 (only c and d evaluate bump), a=0 b=1 c=1 d=1.
	if code != 23 {
		t.Fatalf("exit = %d, want 23", code)
	}
}

func TestCrossUnitCalls(t *testing.T) {
	libSrc := `
int mul2(int x) { return x * 2; }
int shared_val = 5;
`
	mainSrc := `
extern int shared_val;
extern int mul2(int x);
int main() { return mul2(shared_val) + shared_val; }
`
	code, _ := compileRun(t, false, mainSrc, libSrc)
	if code != 15 {
		t.Fatalf("exit = %d, want 15", code)
	}
	// The same program must work compiled PIC.
	code, _ = compileRun(t, true, mainSrc, libSrc)
	if code != 15 {
		t.Fatalf("PIC exit = %d, want 15", code)
	}
}

func TestSyscallWrite(t *testing.T) {
	code, out := compileRun(t, false, `
char msg[] = "hello, world\n";
int main() {
    syscall(2, 1, msg, 13);   /* write(1, msg, 13) */
    return 0;
}
`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out != "hello, world\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestRecursion(t *testing.T) {
	code, _ := compileRun(t, false, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
`)
	if code != 144 {
		t.Fatalf("exit = %d, want 144", code)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`int main() { return x; }`,               // undeclared
		`int main() { int x; int x; return 0; }`, // redeclared
		`int main() { break; }`,                  // break outside loop
		`int main( { return 0; }`,                // syntax
		`int f(int a, int b, int c, int d, int e, int f, int g) { return 0; }`,
		`int main() { return 1 + ; }`,
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{Unit: "bad.c"}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestSourceOperatorFragment(t *testing.T) {
	// The paper's Figure 3 fragment must compile: it fills in a
	// missing variable definition.
	objs, err := Compile("int undef_var = 0;\n", Options{Unit: "fig3.c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("objects = %d, want 1 (globals only)", len(objs))
	}
	found := false
	for _, s := range objs[0].Syms {
		if s.Name == "undef_var" && s.Defined {
			found = true
		}
	}
	if !found {
		t.Fatal("undef_var not defined")
	}
}

func TestPerFunctionObjects(t *testing.T) {
	objs, err := Compile(`
int a() { return 1; }
int b() { return 2; }
int g = 3;
`, Options{Unit: "multi.c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 { // a, b, globals
		t.Fatalf("objects = %d, want 3", len(objs))
	}
	names := []string{}
	for _, o := range objs {
		names = append(names, o.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"multi.c:a", "multi.c:b", "multi.c:globals"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing object %s in %s", want, joined)
		}
	}
}

func TestForLoop(t *testing.T) {
	code, _ := compileRun(t, false, `
int main() {
    int sum;
    int i;
    sum = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i == 5) { continue; }
        if (i == 8) { break; }
        sum = sum + i;
    }
    return sum;  /* 0+1+2+3+4+6+7 = 23 */
}
`)
	if code != 23 {
		t.Fatalf("exit = %d, want 23", code)
	}
}

func TestForLoopEmptyClauses(t *testing.T) {
	code, _ := compileRun(t, false, `
int main() {
    int i;
    i = 0;
    for (;;) {
        i = i + 1;
        if (i >= 7) { break; }
    }
    return i;
}
`)
	if code != 7 {
		t.Fatalf("exit = %d, want 7", code)
	}
}

func TestLocalArrays(t *testing.T) {
	code, _ := compileRun(t, false, `
int sum(int *a, int n) {
    int s;
    int i;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
}
int main() {
    int vals[5];
    char name[8];
    int i;
    for (i = 0; i < 5; i = i + 1) { vals[i] = i * i; }
    name[0] = 'h';
    name[1] = 'i';
    name[2] = 0;
    /* 0+1+4+9+16 = 30, plus 'h'=104 */
    return sum(vals, 5) + name[0];
}
`)
	if code != 134 {
		t.Fatalf("exit = %d, want 134", code)
	}
}

func TestLocalArrayScoping(t *testing.T) {
	// Arrays in sibling scopes reuse frame space; nested scopes must
	// not clobber outer variables.
	code, _ := compileRun(t, false, `
int main() {
    int outer;
    outer = 7;
    {
        int a[4];
        a[3] = 100;
        outer = outer + a[3];
    }
    {
        int b[4];
        b[0] = 1;
        outer = outer + b[0];
    }
    return outer;  /* 7 + 100 + 1 */
}
`)
	if code != 108 {
		t.Fatalf("exit = %d, want 108", code)
	}
}

func TestLocalArrayErrors(t *testing.T) {
	cases := []string{
		`int main() { int a[0]; return 0; }`,
		`int main() { int a[-1]; return 0; }`,
		`int main() { int a[2] = 3; return 0; }`,
		`int main() { int n; int a[n]; return 0; }`,
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{Unit: "bad.c"}); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestLexerNonASCIIBytes(t *testing.T) {
	// Regression: a stray high byte must be a clean error, not an
	// infinite loop (found by FuzzCompile).
	if _, err := Compile("int main() { return 0\xf0 }", Options{Unit: "x.c"}); err == nil {
		t.Fatal("high byte accepted")
	}
	if _, err := Compile("\xf0int main() { return 0; }", Options{Unit: "x.c"}); err == nil {
		t.Fatal("leading high byte accepted")
	}
}

func TestPointerDifferenceAndScaling(t *testing.T) {
	code, _ := compileRun(t, false, `
int arr[10];
int main() {
    int *p;
    int *q;
    p = &arr[2];
    q = &arr[7];
    /* pointer difference scales by element size */
    return (q - p) * 10 + *(p + 3);  /* 50 + arr[5] */
}
`)
	if code != 50 {
		t.Fatalf("exit = %d, want 50", code)
	}
}

func TestCharArithmeticAndShifts(t *testing.T) {
	code, _ := compileRun(t, false, `
int main() {
    char c = 'a';
    int x;
    x = c - 'a' + 'A';            /* to upper: 'A' = 65 */
    return (x << 1) >> 1 ^ 0;     /* still 65 */
}
`)
	if code != 'A' {
		t.Fatalf("exit = %d, want %d", code, 'A')
	}
}

func TestScopedShadowing(t *testing.T) {
	code, _ := compileRun(t, false, `
int main() {
    int x;
    x = 1;
    {
        int x;
        x = 50;
        {
            int x;
            x = 900;
        }
        x = x + 1;  /* 51 */
        if (x != 51) { return 1; }
    }
    return x;  /* outer x untouched */
}
`)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestUnaryAddressOfDeref(t *testing.T) {
	code, _ := compileRun(t, false, `
int g = 9;
int main() {
    int *p;
    int **pp;
    p = &g;
    pp = &p;
    **pp = **pp + 1;
    return *&g;  /* 10 */
}
`)
	if code != 10 {
		t.Fatalf("exit = %d, want 10", code)
	}
}

func TestMoreCompileErrors(t *testing.T) {
	cases := []string{
		`int main() { return *5 + missingtype x; }`,
		`int main() { 5 = 3; return 0; }`,             // bad lvalue
		`int main() { return -; }`,                    // bad unary
		`int main() { int x; return x[3]; }`,          // index non-pointer
		`int main() { return *3; }`,                   // deref int
		`void main(; ) { }`,                           // syntax
		`int f() { return 0; } int f() { return 1; }`, // duplicate fn
		`int g = 1; int g = 2;`,                       // duplicate global
		`int main() { continue; }`,                    // continue outside loop
		`extern int q() { return 1; }`,                // extern with body
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{Unit: "bad.c"}); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestVoidFunctionAndEmptyReturn(t *testing.T) {
	code, _ := compileRun(t, false, `
int counter = 0;
void bump() {
    counter = counter + 1;
    if (counter > 100) { return; }
    return;
}
int main() {
    bump();
    bump();
    return counter;
}
`)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
