package minic

import "fmt"

type parser struct {
	unitName string
	toks     []token
	pos      int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return &CompileError{Unit: p.unitName, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tPunct || t.kind == tKeyword) && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf(p.cur().line, "expected %q, got %q", text, p.cur().text)
	}
	return nil
}

// parseUnit parses a whole translation unit.
func parseUnit(unitName string, toks []token) (*unit, error) {
	p := &parser{unitName: unitName, toks: toks}
	u := &unit{name: unitName, externFuncs: map[string]bool{}}
	for p.cur().kind != tEOF {
		if err := p.topLevel(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// baseType parses "int", "char", or "void" plus pointer stars.
func (p *parser) baseType() (*Type, error) {
	t := p.cur()
	if t.kind != tKeyword || (t.text != "int" && t.text != "char" && t.text != "void") {
		return nil, p.errf(t.line, "expected type, got %q", t.text)
	}
	p.advance()
	var typ *Type
	switch t.text {
	case "int":
		typ = typeInt
	case "char":
		typ = typeChar
	default:
		typ = typeVoid
	}
	for p.accept("*") {
		typ = ptrTo(typ)
	}
	return typ, nil
}

func (p *parser) topLevel(u *unit) error {
	extern := p.accept("extern")
	typ, err := p.baseType()
	if err != nil {
		return err
	}
	nameTok := p.cur()
	if nameTok.kind != tIdent {
		return p.errf(nameTok.line, "expected identifier, got %q", nameTok.text)
	}
	p.advance()

	// Function?
	if p.cur().kind == tPunct && p.cur().text == "(" {
		p.advance()
		var params []param
		if !p.accept(")") {
			for {
				pt, err := p.baseType()
				if err != nil {
					return err
				}
				pname := fmt.Sprintf("$arg%d", len(params))
				if pn := p.cur(); pn.kind == tIdent {
					// Prototypes may omit parameter names.
					pname = pn.text
					p.advance()
				}
				params = append(params, param{name: pname, typ: pt})
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return err
				}
			}
		}
		if p.accept(";") {
			// Prototype / extern function declaration.
			u.externFuncs[nameTok.text] = true
			return nil
		}
		if len(params) > 6 {
			return p.errf(nameTok.line, "too many parameters (max 6)")
		}
		body, err := p.block()
		if err != nil {
			return err
		}
		if extern {
			return p.errf(nameTok.line, "extern function with body")
		}
		u.funcs = append(u.funcs, &funcDecl{
			name: nameTok.text, ret: typ, params: params, body: body, line: nameTok.line,
		})
		return nil
	}

	// Global variable.
	g := &globalDecl{name: nameTok.text, typ: typ, extern: extern, line: nameTok.line}
	if p.accept("[") {
		n := p.cur()
		if n.kind == tNumber {
			p.advance()
			g.typ = &Type{Kind: TArray, Elem: typ, ArrayLen: n.num}
		} else {
			// char s[] = "..." form: length from initializer.
			g.typ = &Type{Kind: TArray, Elem: typ, ArrayLen: -1}
		}
		if err := p.expect("]"); err != nil {
			return err
		}
	}
	if p.accept("=") {
		t := p.cur()
		switch {
		case t.kind == tNumber || t.kind == tChar:
			p.advance()
			v := t.num
			g.initInt = &v
		case t.kind == tPunct && t.text == "-" && p.peek().kind == tNumber:
			p.advance()
			t = p.advance()
			v := -t.num
			g.initInt = &v
		case t.kind == tString:
			p.advance()
			s := t.text
			g.initStr = &s
		default:
			return p.errf(t.line, "unsupported global initializer")
		}
	}
	if g.typ.Kind == TArray && g.typ.ArrayLen < 0 {
		if g.initStr == nil {
			return p.errf(g.line, "array %s needs a length or string initializer", g.name)
		}
		g.typ.ArrayLen = int64(len(*g.initStr)) + 1
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	u.globals = append(u.globals, g)
	return nil
}

func (p *parser) block() (*blockStmt, error) {
	line := p.cur().line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{line: line}
	for !p.accept("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(line, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tKeyword && (t.text == "int" || t.text == "char"):
		typ, err := p.baseType()
		if err != nil {
			return nil, err
		}
		n := p.cur()
		if n.kind != tIdent {
			return nil, p.errf(n.line, "expected variable name")
		}
		p.advance()
		d := &declStmt{name: n.text, typ: typ, line: n.line}
		if p.accept("[") {
			sz := p.cur()
			if sz.kind != tNumber || sz.num <= 0 {
				return nil, p.errf(sz.line, "local array needs a positive constant length")
			}
			p.advance()
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			d.typ = &Type{Kind: TArray, Elem: typ, ArrayLen: sz.num}
		}
		if p.accept("=") {
			if d.typ.Kind == TArray {
				return nil, p.errf(n.line, "local arrays cannot have initializers")
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return d, nil
	case t.kind == tKeyword && t.text == "for":
		// for (init; cond; post) body — desugared here to init +
		// while, with the post expression wired to `continue`.
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var init stmt
		if !p.accept(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			init = &exprStmt{x: e, line: t.line}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var cond expr
		if !p.accept(";") {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = c
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var post expr
		if !p.accept(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			post = e
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &forStmt{init: init, cond: cond, post: post, body: body, line: t.line}, nil
	case t.kind == tKeyword && t.text == "if":
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: t.line}
		if p.accept("else") {
			els, err := p.statement()
			if err != nil {
				return nil, err
			}
			s.els = els
		}
		return s, nil
	case t.kind == tKeyword && t.text == "while":
		p.advance()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &whileStmt{cond: cond, body: body, line: t.line}, nil
	case t.kind == tKeyword && t.text == "return":
		p.advance()
		s := &returnStmt{line: t.line}
		if !p.accept(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.val = e
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return s, nil
	case t.kind == tKeyword && t.text == "break":
		p.advance()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &breakStmt{line: t.line}, nil
	case t.kind == tKeyword && t.text == "continue":
		p.advance()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &continueStmt{line: t.line}, nil
	case t.kind == tPunct && t.text == "{":
		return p.block()
	case t.kind == tPunct && t.text == ";":
		p.advance()
		return &blockStmt{line: t.line}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &exprStmt{x: e, line: t.line}, nil
	}
}

// Expression grammar (precedence climbing):
//
//	assign:  or ( "=" assign )?
//	or:      and ( "||" and )*
//	and:     bitor ( "&&" bitor )*
//	bitor:   bitxor ( "|" bitxor )*
//	bitxor:  bitand ( "^" bitand )*
//	bitand:  cmp ( "&" cmp )*
//	cmp:     shift ( (==|!=|<|<=|>|>=) shift )*
//	shift:   add ( (<<|>>) add )*
//	add:     mul ( (+|-) mul )*
//	mul:     unary ( (*|/|%) unary )*
//	unary:   (-|!|*|&) unary | postfix
//	postfix: primary ( [expr] )*
//	primary: number | char | string | ident | ident(...) | (expr)
func (p *parser) expr() (expr, error) { return p.assign() }

func (p *parser) assign() (expr, error) {
	l, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tPunct && p.cur().text == "=" {
		line := p.cur().line
		p.advance()
		r, err := p.assign()
		if err != nil {
			return nil, err
		}
		switch l.(type) {
		case *identExpr, *indexExpr, *unaryExpr:
			return &assignExpr{target: l, val: r, line: line}, nil
		default:
			return nil, p.errf(line, "invalid assignment target")
		}
	}
	return l, nil
}

// binLevels orders binary operators from loosest to tightest.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!=", "<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	l, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		if t.kind == tPunct {
			for _, op := range binLevels[level] {
				if t.text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return l, nil
		}
		p.advance()
		r, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: t.text, l: l, r: r, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "-" || t.text == "!" || t.text == "*" || t.text == "&") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, x: x, line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tPunct && p.cur().text == "[" {
		line := p.cur().line
		p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		e = &indexExpr{base: e, idx: idx, line: line}
	}
	return e, nil
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber, t.kind == tChar:
		p.advance()
		return &numExpr{val: t.num, line: t.line}, nil
	case t.kind == tString:
		p.advance()
		return &strExpr{val: t.text, line: t.line}, nil
	case t.kind == tPunct && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tIdent:
		p.advance()
		if p.cur().kind == tPunct && p.cur().text == "(" {
			p.advance()
			var args []expr
			if !p.accept(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			if t.text == "syscall" {
				if len(args) == 0 {
					return nil, p.errf(t.line, "syscall needs a number")
				}
				n, ok := args[0].(*numExpr)
				if !ok {
					return nil, p.errf(t.line, "syscall number must be a literal")
				}
				if len(args) > 6 {
					return nil, p.errf(t.line, "too many syscall arguments")
				}
				return &syscallExpr{num: n.val, args: args[1:], line: t.line}, nil
			}
			if len(args) > 6 {
				return nil, p.errf(t.line, "too many call arguments (max 6)")
			}
			return &callExpr{name: t.text, args: args, line: t.line}, nil
		}
		return &identExpr{name: t.text, line: t.line}, nil
	}
	return nil, p.errf(t.line, "unexpected token %q", t.text)
}
