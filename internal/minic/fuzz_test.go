package minic

import "testing"

// FuzzCompile: arbitrary source must never panic the compiler;
// successful compiles must produce valid objects.
func FuzzCompile(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add("int f(int a, char *b) { while (a) { a = a - 1; } return b[0]; }")
	f.Add("char s[] = \"hi\"; int g = 3;")
	f.Add("int main() { for (;;) { break; } return 0; }")
	f.Add("int x = ;")
	f.Add("}{")
	f.Fuzz(func(t *testing.T, src string) {
		objs, err := Compile(src, Options{Unit: "fuzz.c"})
		if err != nil {
			return
		}
		for _, o := range objs {
			if err := o.Validate(); err != nil {
				t.Fatalf("compiler produced invalid object: %v", err)
			}
		}
	})
}
