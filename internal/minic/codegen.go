package minic

import (
	"fmt"
	"strings"

	"omos/internal/asm"
	"omos/internal/obj"
)

// Options control compilation.
type Options struct {
	// Unit names the translation unit (used in object names and
	// diagnostics).
	Unit string
	// PIC selects position-independent output: pc-relative calls,
	// pc-relative addressing for unit-defined data, and GOT-indirect
	// addressing for extern data.  Non-PIC output uses absolute
	// addressing everywhere — the form whose relocations OMOS resolves
	// once and caches (§4.1).
	PIC bool
}

// Compile compiles a translation unit.  Each function becomes its own
// relocatable object (so the link layer can reorder routines); unit
// globals become one additional object.
func Compile(src string, opts Options) ([]*obj.Object, error) {
	if opts.Unit == "" {
		opts.Unit = "unit"
	}
	toks, err := lex(opts.Unit, src)
	if err != nil {
		return nil, err
	}
	u, err := parseUnit(opts.Unit, toks)
	if err != nil {
		return nil, err
	}
	cg := &codegen{unit: u, opts: opts, globals: map[string]*globalDecl{}}
	for _, g := range u.globals {
		if prev, dup := cg.globals[g.name]; dup && !prev.extern && !g.extern {
			return nil, &CompileError{Unit: opts.Unit, Line: g.line,
				Msg: fmt.Sprintf("global %s redefined", g.name)}
		}
		if prev, dup := cg.globals[g.name]; !dup || prev.extern {
			cg.globals[g.name] = g
		}
	}
	var objs []*obj.Object
	seen := map[string]bool{}
	for _, fn := range u.funcs {
		if seen[fn.name] {
			return nil, &CompileError{Unit: opts.Unit, Line: fn.line,
				Msg: fmt.Sprintf("function %s redefined", fn.name)}
		}
		seen[fn.name] = true
		text, err := cg.genFunc(fn)
		if err != nil {
			return nil, err
		}
		o, err := asm.Assemble(fmt.Sprintf("%s:%s", opts.Unit, fn.name), text)
		if err != nil {
			return nil, fmt.Errorf("minic: internal assembly error in %s: %w", fn.name, err)
		}
		objs = append(objs, o)
	}
	if gtext := cg.genGlobals(); gtext != "" {
		o, err := asm.Assemble(opts.Unit+":globals", gtext)
		if err != nil {
			return nil, fmt.Errorf("minic: internal assembly error in globals: %w", err)
		}
		objs = append(objs, o)
	}
	return objs, nil
}

// codegen holds per-unit compilation state.
type codegen struct {
	unit    *unit
	opts    Options
	globals map[string]*globalDecl

	// per-function state
	out      strings.Builder
	locals   []map[string]localVar
	nslots   int
	maxSlots int
	labelSeq int
	strs     []string // string literal pool for the current function
	loops    []loopLabels
	fnLine   int
}

type localVar struct {
	// slot is the first frame slot index; a variable occupying k
	// slots lives at [fp-8*(slot+k), fp-8*slot).  Scalars address
	// fp-8*(slot+1); arrays decay to their lowest address.
	slot  int
	slots int
	typ   *Type
}

// frameOffset returns the variable's address offset below fp.
func (v localVar) frameOffset() int { return 8 * (v.slot + v.slots) }

type loopLabels struct{ cont, brk string }

func (cg *codegen) errf(line int, format string, args ...interface{}) error {
	return &CompileError{Unit: cg.opts.Unit, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (cg *codegen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&cg.out, "    "+format+"\n", args...)
}

func (cg *codegen) label(l string) { fmt.Fprintf(&cg.out, "%s:\n", l) }

func (cg *codegen) newLabel() string {
	cg.labelSeq++
	return fmt.Sprintf(".L%d", cg.labelSeq)
}

func (cg *codegen) pushScope() { cg.locals = append(cg.locals, map[string]localVar{}) }
func (cg *codegen) popScope() {
	n := len(cg.locals) - 1
	for _, v := range cg.locals[n] {
		cg.nslots -= v.slots
	}
	cg.locals = cg.locals[:n]
}

func (cg *codegen) declare(name string, typ *Type, line int) (localVar, error) {
	scope := cg.locals[len(cg.locals)-1]
	if _, dup := scope[name]; dup {
		return localVar{}, cg.errf(line, "variable %s redeclared", name)
	}
	slots := 1
	if typ.Kind == TArray {
		slots = int((typ.Size() + 7) / 8)
	}
	v := localVar{slot: cg.nslots, slots: slots, typ: typ}
	cg.nslots += slots
	if cg.nslots > cg.maxSlots {
		cg.maxSlots = cg.nslots
	}
	scope[name] = v
	return v, nil
}

func (cg *codegen) lookupLocal(name string) (localVar, bool) {
	for i := len(cg.locals) - 1; i >= 0; i-- {
		if v, ok := cg.locals[i][name]; ok {
			return v, true
		}
	}
	return localVar{}, false
}

// genFunc generates the assembly for one function and returns it.
func (cg *codegen) genFunc(fn *funcDecl) (string, error) {
	cg.out.Reset()
	cg.locals = nil
	cg.nslots = 0
	cg.maxSlots = 0
	cg.labelSeq = 0
	cg.strs = nil
	cg.loops = nil
	cg.fnLine = fn.line

	cg.pushScope()
	var paramVars []localVar
	for _, pm := range fn.params {
		v, err := cg.declare(pm.name, pm.typ, fn.line)
		if err != nil {
			return "", err
		}
		paramVars = append(paramVars, v)
	}
	// Body into a scratch buffer first so the prologue can size the
	// frame afterwards.
	var body strings.Builder
	saved := cg.out
	cg.out = strings.Builder{}
	if err := cg.genBlock(fn.body); err != nil {
		return "", err
	}
	// Fall-through return.
	cg.emit("movi r0, 0")
	cg.emit("jmp .Lret")
	body = cg.out
	cg.out = saved
	cg.popScope()

	var sb strings.Builder
	sb.WriteString(".text\n")
	fmt.Fprintf(&sb, "%s:\n", fn.name)
	fmt.Fprintf(&sb, "    push fp\n    mov fp, sp\n")
	frame := cg.maxSlots * 8
	if frame > 0 {
		fmt.Fprintf(&sb, "    addi sp, sp, -%d\n", frame)
	}
	for i, v := range paramVars {
		fmt.Fprintf(&sb, "    st [fp-%d], r%d\n", v.frameOffset(), i+1)
	}
	sb.WriteString(body.String())
	sb.WriteString(".Lret:\n    mov sp, fp\n    pop fp\n    ret\n")
	if len(cg.strs) > 0 {
		sb.WriteString(".data\n")
		for i, s := range cg.strs {
			fmt.Fprintf(&sb, ".Lstr%d:\n    .asciz %q\n", i, s)
		}
	}
	return sb.String(), nil
}

// genGlobals emits the unit's global-variable object source (empty
// string if the unit defines no globals).
func (cg *codegen) genGlobals() string {
	var data, bss strings.Builder
	for _, g := range cg.unit.globals {
		if g.extern {
			continue
		}
		switch {
		case g.initStr != nil:
			fmt.Fprintf(&data, "%s:\n    .asciz %q\n", g.name, *g.initStr)
			// Pad to the declared array length.
			if pad := g.typ.Size() - int64(len(*g.initStr)) - 1; pad > 0 {
				fmt.Fprintf(&data, "    .space %d\n", pad)
			}
		case g.initInt != nil:
			fmt.Fprintf(&data, ".align 8\n%s:\n", g.name)
			if g.typ.Kind == TChar {
				fmt.Fprintf(&data, "    .byte %d\n", *g.initInt)
			} else {
				fmt.Fprintf(&data, "    .quad %d\n", *g.initInt)
			}
		default:
			fmt.Fprintf(&bss, ".align 8\n%s:\n    .space %d\n", g.name, g.typ.Size())
		}
	}
	var sb strings.Builder
	if data.Len() > 0 {
		sb.WriteString(".data\n")
		sb.WriteString(data.String())
	}
	if bss.Len() > 0 {
		sb.WriteString(".bss\n")
		sb.WriteString(bss.String())
	}
	return sb.String()
}

// definedInUnit reports whether name is a global defined (not extern)
// in this unit.
func (cg *codegen) definedInUnit(name string) bool {
	g, ok := cg.globals[name]
	return ok && !g.extern
}

// emitGlobalAddr pushes the address of global sym.
func (cg *codegen) emitGlobalAddr(name string) {
	switch {
	case !cg.opts.PIC:
		cg.emit("lea r8, =%s", name)
	case cg.definedInUnit(name):
		cg.emit("leapc r8, =%s", name)
	default:
		cg.emit("ldg r8, @%s", name)
	}
	cg.emit("push r8")
}

// typeOf infers an expression's type.
func (cg *codegen) typeOf(e expr) (*Type, error) {
	switch x := e.(type) {
	case *numExpr:
		return typeInt, nil
	case *strExpr:
		return ptrTo(typeChar), nil
	case *identExpr:
		if v, ok := cg.lookupLocal(x.name); ok {
			return v.typ, nil
		}
		if g, ok := cg.globals[x.name]; ok {
			return g.typ, nil
		}
		return nil, cg.errf(x.line, "undeclared variable %s", x.name)
	case *unaryExpr:
		switch x.op {
		case "*":
			t, err := cg.typeOf(x.x)
			if err != nil {
				return nil, err
			}
			if !t.IsPointerish() {
				return nil, cg.errf(x.line, "cannot dereference %s", t)
			}
			return t.Elem, nil
		case "&":
			t, err := cg.typeOf(x.x)
			if err != nil {
				return nil, err
			}
			return ptrTo(t), nil
		default:
			return typeInt, nil
		}
	case *binExpr:
		lt, err := cg.typeOf(x.l)
		if err != nil {
			return nil, err
		}
		rt, err := cg.typeOf(x.r)
		if err != nil {
			return nil, err
		}
		if (x.op == "+" || x.op == "-") && lt.IsPointerish() && !rt.IsPointerish() {
			if lt.Kind == TArray {
				return ptrTo(lt.Elem), nil
			}
			return lt, nil
		}
		if x.op == "+" && rt.IsPointerish() && !lt.IsPointerish() {
			if rt.Kind == TArray {
				return ptrTo(rt.Elem), nil
			}
			return rt, nil
		}
		return typeInt, nil
	case *assignExpr:
		return cg.typeOf(x.target)
	case *indexExpr:
		bt, err := cg.typeOf(x.base)
		if err != nil {
			return nil, err
		}
		if !bt.IsPointerish() {
			return nil, cg.errf(x.line, "cannot index %s", bt)
		}
		return bt.Elem, nil
	case *callExpr, *syscallExpr:
		return typeInt, nil
	}
	return typeInt, nil
}

// genAddr pushes the address of an lvalue.
func (cg *codegen) genAddr(e expr) error {
	switch x := e.(type) {
	case *identExpr:
		if v, ok := cg.lookupLocal(x.name); ok {
			cg.emit("mov r8, fp")
			cg.emit("addi r8, r8, -%d", v.frameOffset())
			cg.emit("push r8")
			return nil
		}
		if _, ok := cg.globals[x.name]; ok {
			cg.emitGlobalAddr(x.name)
			return nil
		}
		return cg.errf(x.line, "undeclared variable %s", x.name)
	case *indexExpr:
		bt, err := cg.typeOf(x.base)
		if err != nil {
			return err
		}
		if !bt.IsPointerish() {
			return cg.errf(x.line, "cannot index %s", bt)
		}
		if err := cg.genExpr(x.base); err != nil { // base decays to address
			return err
		}
		if err := cg.genExpr(x.idx); err != nil {
			return err
		}
		cg.emit("pop r9")
		cg.emit("pop r8")
		if sz := bt.ElemSize(); sz != 1 {
			cg.emit("muli r9, r9, %d", sz)
		}
		cg.emit("add r8, r8, r9")
		cg.emit("push r8")
		return nil
	case *unaryExpr:
		if x.op == "*" {
			return cg.genExpr(x.x) // the pointer value is the address
		}
		return cg.errf(x.line, "invalid lvalue")
	}
	return cg.errf(e.exprLine(), "invalid lvalue")
}
