// Package minic implements a compiler for a small C-like language,
// emitting ROF relocatable objects via the assembler.
//
// It serves two roles from the paper: it is the compiler behind the
// `source` blueprint operator ((source "c" "int undef_var = 0;\n")),
// and it is the toolchain used to synthesize the evaluation workloads
// (libc, ls, codegen).  Each top-level function compiles to its own
// object file — the "primitive fragments consisting of a single
// routine" the paper's future-work section contemplates — which is
// what makes the monitor package's locality reordering a pure
// link-level transformation.
//
// Language summary:
//
//	types:      int (64-bit), char, int*, char*, arrays (global)
//	globals:    int g = 3;  int g;  int a[10];  char s[] = "hi";
//	            extern int x;  extern int f();
//	functions:  int f(int a, char *p) { ... }   (max 6 parameters)
//	statements: declarations, expression;, if/else, while, return,
//	            break, continue, { blocks }
//	expressions: integer/char/string literals, variables, assignment,
//	            + - * / % & | ^ << >> comparisons && || !, unary - * &,
//	            indexing a[i], calls f(x), syscall(N, args...)
package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tChar
	tPunct   // operators and punctuation
	tKeyword // int, char, if, else, while, return, extern, break, continue, void
)

var keywords = map[string]bool{
	"int": true, "char": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "extern": true, "break": true,
	"continue": true, "void": true,
}

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

// CompileError reports a compilation failure with position.
type CompileError struct {
	Unit string
	Line int
	Msg  string
}

// Error formats the position-tagged message.
func (e *CompileError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Unit, e.Line, e.Msg)
}

type lexer struct {
	unit string
	src  string
	pos  int
	line int
	toks []token
}

func lex(unit, src string) ([]token, error) {
	l := &lexer{unit: unit, src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &CompileError{Unit: l.unit, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

// twoCharOps are recognized greedily before single-char operators.
var twoCharOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentByte(c) && !(c >= '0' && c <= '9'):
		for l.pos < len(l.src) && (isIdentByte(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tIdent
		if keywords[text] {
			kind = tKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	case unicode.IsDigit(rune(c)):
		for l.pos < len(l.src) && (isIdentByte(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf("bad number %q", text)
		}
		return token{kind: tNumber, text: text, num: v, line: l.line}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '0':
					sb.WriteByte(0)
				case '\\', '"', '\'':
					sb.WriteByte(l.src[l.pos])
				default:
					return token{}, l.errf("bad escape \\%c", l.src[l.pos])
				}
			} else {
				if l.src[l.pos] == '\n' {
					return token{}, l.errf("newline in string literal")
				}
				sb.WriteByte(l.src[l.pos])
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		l.pos++
		return token{kind: tString, text: sb.String(), line: l.line}, nil
	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated char literal")
		}
		var v byte
		if l.src[l.pos] == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated char literal")
			}
			switch l.src[l.pos] {
			case 'n':
				v = '\n'
			case 't':
				v = '\t'
			case '0':
				v = 0
			case '\\', '\'', '"':
				v = l.src[l.pos]
			default:
				return token{}, l.errf("bad escape in char literal")
			}
		} else {
			v = l.src[l.pos]
		}
		l.pos++
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return token{}, l.errf("unterminated char literal")
		}
		l.pos++
		return token{kind: tChar, num: int64(v), line: l.line}, nil
	default:
		for _, op := range twoCharOps {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tPunct, text: op, line: l.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%&|^!<>=(){}[],;", rune(c)) {
			l.pos++
			return token{kind: tPunct, text: string(c), line: l.line}, nil
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
