package minic

// Type describes a minic type.
type Type struct {
	// Kind is one of TInt, TChar, TPtr, TArray, TVoid.
	Kind TypeKind
	// Elem is the element type for TPtr and TArray.
	Elem *Type
	// ArrayLen is the element count for TArray.
	ArrayLen int64
}

// TypeKind enumerates minic types.
type TypeKind int

// Type kinds.
const (
	TInt TypeKind = iota
	TChar
	TPtr
	TArray
	TVoid
)

var (
	typeInt  = &Type{Kind: TInt}
	typeChar = &Type{Kind: TChar}
	typeVoid = &Type{Kind: TVoid}
)

func ptrTo(e *Type) *Type { return &Type{Kind: TPtr, Elem: e} }

// Size returns the storage size in bytes.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TChar:
		return 1
	case TArray:
		return t.Elem.Size() * t.ArrayLen
	case TVoid:
		return 0
	default:
		return 8
	}
}

// IsPointerish reports whether the value decays to an address.
func (t *Type) IsPointerish() bool { return t.Kind == TPtr || t.Kind == TArray }

// ElemSize returns the pointed-to element size for pointer arithmetic.
func (t *Type) ElemSize() int64 {
	if t.Elem == nil {
		return 1
	}
	return t.Elem.Size()
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TChar:
		return "char"
	case TVoid:
		return "void"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// Expression nodes.
type (
	numExpr struct {
		val  int64
		line int
	}
	strExpr struct {
		val  string
		line int
	}
	identExpr struct {
		name string
		line int
	}
	unaryExpr struct {
		op   string // "-", "!", "*", "&"
		x    expr
		line int
	}
	binExpr struct {
		op   string
		l, r expr
		line int
	}
	assignExpr struct {
		target expr
		val    expr
		line   int
	}
	indexExpr struct {
		base, idx expr
		line      int
	}
	callExpr struct {
		name string
		args []expr
		line int
	}
	syscallExpr struct {
		num  int64
		args []expr
		line int
	}
)

type expr interface{ exprLine() int }

func (e *numExpr) exprLine() int     { return e.line }
func (e *strExpr) exprLine() int     { return e.line }
func (e *identExpr) exprLine() int   { return e.line }
func (e *unaryExpr) exprLine() int   { return e.line }
func (e *binExpr) exprLine() int     { return e.line }
func (e *assignExpr) exprLine() int  { return e.line }
func (e *indexExpr) exprLine() int   { return e.line }
func (e *callExpr) exprLine() int    { return e.line }
func (e *syscallExpr) exprLine() int { return e.line }

// Statement nodes.
type (
	declStmt struct {
		name string
		typ  *Type
		init expr // may be nil
		line int
	}
	exprStmt struct {
		x    expr
		line int
	}
	ifStmt struct {
		cond      expr
		then, els stmt // els may be nil
		line      int
	}
	whileStmt struct {
		cond expr
		body stmt
		line int
	}
	forStmt struct {
		init stmt // may be nil
		cond expr // may be nil (infinite)
		post expr // may be nil
		body stmt
		line int
	}
	returnStmt struct {
		val  expr // may be nil
		line int
	}
	breakStmt struct {
		line int
	}
	continueStmt struct {
		line int
	}
	blockStmt struct {
		stmts []stmt
		line  int
	}
)

type stmt interface{ stmtLine() int }

func (s *declStmt) stmtLine() int     { return s.line }
func (s *exprStmt) stmtLine() int     { return s.line }
func (s *ifStmt) stmtLine() int       { return s.line }
func (s *whileStmt) stmtLine() int    { return s.line }
func (s *forStmt) stmtLine() int      { return s.line }
func (s *returnStmt) stmtLine() int   { return s.line }
func (s *breakStmt) stmtLine() int    { return s.line }
func (s *continueStmt) stmtLine() int { return s.line }
func (s *blockStmt) stmtLine() int    { return s.line }

// Top-level declarations.
type param struct {
	name string
	typ  *Type
}

type funcDecl struct {
	name   string
	ret    *Type
	params []param
	body   *blockStmt
	line   int
}

type globalDecl struct {
	name    string
	typ     *Type
	initInt *int64  // integer initializer
	initStr *string // string initializer (char arrays)
	extern  bool
	line    int
}

type unit struct {
	name    string
	globals []*globalDecl
	funcs   []*funcDecl
	// externFuncs records extern function declarations (name only).
	externFuncs map[string]bool
}
