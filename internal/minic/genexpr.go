package minic

// genExpr generates code leaving the expression's value on the stack.
func (cg *codegen) genExpr(e expr) error {
	switch x := e.(type) {
	case *numExpr:
		cg.emit("movi r8, %d", x.val)
		cg.emit("push r8")
		return nil

	case *strExpr:
		idx := len(cg.strs)
		cg.strs = append(cg.strs, x.val)
		if cg.opts.PIC {
			cg.emit("leapc r8, =.Lstr%d", idx)
		} else {
			cg.emit("lea r8, =.Lstr%d", idx)
		}
		cg.emit("push r8")
		return nil

	case *identExpr:
		t, err := cg.typeOf(x)
		if err != nil {
			return err
		}
		if t.Kind == TArray {
			return cg.genAddr(x) // arrays decay to their address
		}
		if err := cg.genAddr(x); err != nil {
			return err
		}
		cg.emit("pop r8")
		if t.Size() == 1 {
			cg.emit("ld8 r8, [r8]")
		} else {
			cg.emit("ld r8, [r8]")
		}
		cg.emit("push r8")
		return nil

	case *indexExpr:
		t, err := cg.typeOf(x)
		if err != nil {
			return err
		}
		if err := cg.genAddr(x); err != nil {
			return err
		}
		if t.Kind == TArray {
			return nil // address of sub-array
		}
		cg.emit("pop r8")
		if t.Size() == 1 {
			cg.emit("ld8 r8, [r8]")
		} else {
			cg.emit("ld r8, [r8]")
		}
		cg.emit("push r8")
		return nil

	case *assignExpr:
		t, err := cg.typeOf(x.target)
		if err != nil {
			return err
		}
		if err := cg.genAddr(x.target); err != nil {
			return err
		}
		if err := cg.genExpr(x.val); err != nil {
			return err
		}
		cg.emit("pop r9")
		cg.emit("pop r8")
		if t.Size() == 1 {
			cg.emit("st8 [r8], r9")
		} else {
			cg.emit("st [r8], r9")
		}
		cg.emit("push r9")
		return nil

	case *unaryExpr:
		switch x.op {
		case "-":
			if err := cg.genExpr(x.x); err != nil {
				return err
			}
			cg.emit("pop r8")
			cg.emit("neg r8, r8")
			cg.emit("push r8")
			return nil
		case "!":
			if err := cg.genExpr(x.x); err != nil {
				return err
			}
			cg.emit("pop r8")
			cg.emit("movi r9, 0")
			cg.emit("seq r8, r8, r9")
			cg.emit("push r8")
			return nil
		case "*":
			t, err := cg.typeOf(x)
			if err != nil {
				return err
			}
			if err := cg.genExpr(x.x); err != nil {
				return err
			}
			cg.emit("pop r8")
			if t.Size() == 1 {
				cg.emit("ld8 r8, [r8]")
			} else {
				cg.emit("ld r8, [r8]")
			}
			cg.emit("push r8")
			return nil
		case "&":
			return cg.genAddr(x.x)
		}
		return cg.errf(x.line, "bad unary operator %q", x.op)

	case *binExpr:
		return cg.genBin(x)

	case *callExpr:
		for _, a := range x.args {
			if err := cg.genExpr(a); err != nil {
				return err
			}
		}
		for i := len(x.args); i >= 1; i-- {
			cg.emit("pop r%d", i)
		}
		if cg.opts.PIC {
			cg.emit("callpc %s", x.name)
		} else {
			cg.emit("call %s", x.name)
		}
		cg.emit("push r0")
		return nil

	case *syscallExpr:
		for _, a := range x.args {
			if err := cg.genExpr(a); err != nil {
				return err
			}
		}
		for i := len(x.args); i >= 1; i-- {
			cg.emit("pop r%d", i)
		}
		cg.emit("sys %d", x.num)
		cg.emit("push r0")
		return nil
	}
	return cg.errf(e.exprLine(), "unsupported expression")
}

// genBin generates a binary operation.
func (cg *codegen) genBin(x *binExpr) error {
	switch x.op {
	case "&&", "||":
		return cg.genShortCircuit(x)
	}
	lt, err := cg.typeOf(x.l)
	if err != nil {
		return err
	}
	rt, err := cg.typeOf(x.r)
	if err != nil {
		return err
	}
	if err := cg.genExpr(x.l); err != nil {
		return err
	}
	if err := cg.genExpr(x.r); err != nil {
		return err
	}
	cg.emit("pop r9")
	cg.emit("pop r8")

	// Pointer arithmetic scaling.
	if x.op == "+" || x.op == "-" {
		switch {
		case lt.IsPointerish() && !rt.IsPointerish():
			if sz := lt.ElemSize(); sz != 1 {
				cg.emit("muli r9, r9, %d", sz)
			}
		case x.op == "+" && rt.IsPointerish() && !lt.IsPointerish():
			if sz := rt.ElemSize(); sz != 1 {
				cg.emit("muli r8, r8, %d", sz)
			}
		case x.op == "-" && lt.IsPointerish() && rt.IsPointerish():
			cg.emit("sub r8, r8, r9")
			if sz := lt.ElemSize(); sz != 1 {
				cg.emit("movi r9, %d", sz)
				cg.emit("div r8, r8, r9")
			}
			cg.emit("push r8")
			return nil
		}
	}

	switch x.op {
	case "+":
		cg.emit("add r8, r8, r9")
	case "-":
		cg.emit("sub r8, r8, r9")
	case "*":
		cg.emit("mul r8, r8, r9")
	case "/":
		cg.emit("div r8, r8, r9")
	case "%":
		cg.emit("mod r8, r8, r9")
	case "&":
		cg.emit("and r8, r8, r9")
	case "|":
		cg.emit("or r8, r8, r9")
	case "^":
		cg.emit("xor r8, r8, r9")
	case "<<":
		cg.emit("shl r8, r8, r9")
	case ">>":
		cg.emit("shr r8, r8, r9")
	case "==":
		cg.emit("seq r8, r8, r9")
	case "!=":
		cg.emit("seq r8, r8, r9")
		cg.emit("movi r9, 0")
		cg.emit("seq r8, r8, r9")
	case "<":
		cg.emit("slt r8, r8, r9")
	case ">":
		cg.emit("slt r8, r9, r8")
	case "<=":
		cg.emit("slt r8, r9, r8")
		cg.emit("movi r9, 0")
		cg.emit("seq r8, r8, r9")
	case ">=":
		cg.emit("slt r8, r8, r9")
		cg.emit("movi r9, 0")
		cg.emit("seq r8, r8, r9")
	default:
		return cg.errf(x.line, "bad binary operator %q", x.op)
	}
	cg.emit("push r8")
	return nil
}

// genShortCircuit generates && and || with proper short-circuit
// evaluation, normalizing the result to 0/1.
func (cg *codegen) genShortCircuit(x *binExpr) error {
	out := cg.newLabel()
	end := cg.newLabel()
	branch := "bne" // || jumps to "true" arm on non-zero
	if x.op == "&&" {
		branch = "beq" // && jumps to "false" arm on zero
	}
	if err := cg.genExpr(x.l); err != nil {
		return err
	}
	cg.emit("pop r8")
	cg.emit("movi r9, 0")
	cg.emit("%s r8, r9, %s", branch, out)
	if err := cg.genExpr(x.r); err != nil {
		return err
	}
	cg.emit("pop r8")
	cg.emit("movi r9, 0")
	cg.emit("%s r8, r9, %s", branch, out)
	if x.op == "&&" {
		cg.emit("movi r8, 1")
	} else {
		cg.emit("movi r8, 0")
	}
	cg.emit("push r8")
	cg.emit("jmp %s", end)
	cg.label(out)
	if x.op == "&&" {
		cg.emit("movi r8, 0")
	} else {
		cg.emit("movi r8, 1")
	}
	cg.emit("push r8")
	cg.label(end)
	return nil
}

// genStmt generates one statement.
func (cg *codegen) genStmt(s stmt) error {
	switch x := s.(type) {
	case *declStmt:
		v, err := cg.declare(x.name, x.typ, x.line)
		if err != nil {
			return err
		}
		if x.init != nil {
			if err := cg.genExpr(x.init); err != nil {
				return err
			}
			cg.emit("pop r9")
			cg.emit("mov r8, fp")
			cg.emit("addi r8, r8, -%d", v.frameOffset())
			if x.typ.Size() == 1 {
				cg.emit("st8 [r8], r9")
			} else {
				cg.emit("st [r8], r9")
			}
		}
		return nil
	case *exprStmt:
		if err := cg.genExpr(x.x); err != nil {
			return err
		}
		cg.emit("pop r8") // discard value
		return nil
	case *ifStmt:
		els := cg.newLabel()
		end := cg.newLabel()
		if err := cg.genExpr(x.cond); err != nil {
			return err
		}
		cg.emit("pop r8")
		cg.emit("movi r9, 0")
		cg.emit("beq r8, r9, %s", els)
		if err := cg.genStmt(x.then); err != nil {
			return err
		}
		cg.emit("jmp %s", end)
		cg.label(els)
		if x.els != nil {
			if err := cg.genStmt(x.els); err != nil {
				return err
			}
		}
		cg.label(end)
		return nil
	case *whileStmt:
		cond := cg.newLabel()
		end := cg.newLabel()
		cg.label(cond)
		if err := cg.genExpr(x.cond); err != nil {
			return err
		}
		cg.emit("pop r8")
		cg.emit("movi r9, 0")
		cg.emit("beq r8, r9, %s", end)
		cg.loops = append(cg.loops, loopLabels{cont: cond, brk: end})
		if err := cg.genStmt(x.body); err != nil {
			return err
		}
		cg.loops = cg.loops[:len(cg.loops)-1]
		cg.emit("jmp %s", cond)
		cg.label(end)
		return nil
	case *forStmt:
		if x.init != nil {
			if err := cg.genStmt(x.init); err != nil {
				return err
			}
		}
		cond := cg.newLabel()
		post := cg.newLabel() // continue target: run the post expression
		end := cg.newLabel()
		cg.label(cond)
		if x.cond != nil {
			if err := cg.genExpr(x.cond); err != nil {
				return err
			}
			cg.emit("pop r8")
			cg.emit("movi r9, 0")
			cg.emit("beq r8, r9, %s", end)
		}
		cg.loops = append(cg.loops, loopLabels{cont: post, brk: end})
		if err := cg.genStmt(x.body); err != nil {
			return err
		}
		cg.loops = cg.loops[:len(cg.loops)-1]
		cg.label(post)
		if x.post != nil {
			if err := cg.genExpr(x.post); err != nil {
				return err
			}
			cg.emit("pop r8")
		}
		cg.emit("jmp %s", cond)
		cg.label(end)
		return nil
	case *returnStmt:
		if x.val != nil {
			if err := cg.genExpr(x.val); err != nil {
				return err
			}
			cg.emit("pop r0")
		} else {
			cg.emit("movi r0, 0")
		}
		cg.emit("jmp .Lret")
		return nil
	case *breakStmt:
		if len(cg.loops) == 0 {
			return cg.errf(x.line, "break outside loop")
		}
		cg.emit("jmp %s", cg.loops[len(cg.loops)-1].brk)
		return nil
	case *continueStmt:
		if len(cg.loops) == 0 {
			return cg.errf(x.line, "continue outside loop")
		}
		cg.emit("jmp %s", cg.loops[len(cg.loops)-1].cont)
		return nil
	case *blockStmt:
		return cg.genBlock(x)
	}
	return cg.errf(s.stmtLine(), "unsupported statement")
}

func (cg *codegen) genBlock(b *blockStmt) error {
	cg.pushScope()
	defer cg.popScope()
	for _, s := range b.stmts {
		if err := cg.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}
