// Package jigsaw implements the module operators of Bracha and
// Lindstrom's Jigsaw as used by OMOS (§3.3 of the paper): merge,
// override, freeze, restrict, project, copy-as, hide, show, and
// rename.
//
// A Module is "a self-referential naming scope": a set of code/data
// fragments together with a *view* — an incremental mapping from each
// fragment's raw symbol names to the names visible at the module
// boundary.  Operators never rewrite the underlying object files; they
// produce new views, which is what makes incremental namespace
// modification cheap (the paper's "many different name configurations
// ('views') ... mapped onto a given object file").
//
// All operators are functional: they return a new Module, leaving the
// operand untouched.  This matches m-graph evaluation, where a cached
// subgraph result may be shared by several graphs.
package jigsaw

import (
	"fmt"
	"regexp"
	"sort"
	"sync/atomic"

	"omos/internal/obj"
)

// uniq generates process-unique suffixes for privatized names.  The
// names never appear in image bytes, so this does not perturb builds.
var uniq atomic.Uint64

// defInfo describes one definition-like entry (a real definition or an
// alias created by copy-as/freeze).
type defInfo struct {
	// ext is the name visible at the module boundary.
	ext string
	// local entries resolve references within this module but are not
	// exported (hide) and do not conflict across modules.
	local bool
	// deleted entries no longer resolve anything (restrict, override).
	deleted bool
}

// Fragment is one underlying object plus its current view.
type Fragment struct {
	o *obj.Object
	// defs maps raw symbol names of definitions to their current info.
	defs map[string]defInfo
	// refs maps raw undefined-symbol names to current external names.
	refs map[string]string
	// aliases maps alias id -> (ext name, raw target, flags).  Alias
	// ids are synthetic and stable within the fragment.
	aliases map[string]aliasInfo
}

type aliasInfo struct {
	defInfo
	targetRaw string
}

// Module is an immutable set of fragments under a shared namespace.
type Module struct {
	frags []*Fragment
}

// NewModule wraps relocatable objects as a module.  Object-local
// symbols are privatized immediately so they can never collide across
// fragments.
func NewModule(objs ...*obj.Object) (*Module, error) {
	m := &Module{}
	for _, o := range objs {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("jigsaw: %w", err)
		}
		f := &Fragment{
			o:       o,
			defs:    make(map[string]defInfo),
			refs:    make(map[string]string),
			aliases: make(map[string]aliasInfo),
		}
		for i := range o.Syms {
			s := &o.Syms[i]
			switch {
			case !s.Defined:
				f.refs[s.Name] = s.Name
			case s.Bind == obj.BindLocal:
				f.defs[s.Name] = defInfo{ext: privName(s.Name), local: true}
			default:
				f.defs[s.Name] = defInfo{ext: s.Name}
			}
		}
		m.frags = append(m.frags, f)
	}
	return m, nil
}

func privName(base string) string {
	return fmt.Sprintf("%s$p%d", base, uniq.Add(1))
}

// clone deep-copies the module's views (not the underlying objects).
func (m *Module) clone() *Module {
	out := &Module{frags: make([]*Fragment, len(m.frags))}
	for i, f := range m.frags {
		nf := &Fragment{
			o:       f.o,
			defs:    make(map[string]defInfo, len(f.defs)),
			refs:    make(map[string]string, len(f.refs)),
			aliases: make(map[string]aliasInfo, len(f.aliases)),
		}
		for k, v := range f.defs {
			nf.defs[k] = v
		}
		for k, v := range f.refs {
			nf.refs[k] = v
		}
		for k, v := range f.aliases {
			nf.aliases[k] = v
		}
		out.frags[i] = nf
	}
	return out
}

// NumFragments returns the number of fragments.
func (m *Module) NumFragments() int { return len(m.frags) }

// exportedDefs returns ext name -> count of exported, non-deleted
// definition-like entries.
func (m *Module) exportedDefs() map[string]int {
	out := map[string]int{}
	for _, f := range m.frags {
		for _, d := range f.defs {
			if !d.deleted && !d.local {
				out[d.ext]++
			}
		}
		for _, a := range f.aliases {
			if !a.deleted && !a.local {
				out[a.ext]++
			}
		}
	}
	return out
}

// resolvableDefs returns ext name -> count of all non-deleted entries
// (exported or module-local); these are the names link resolution may
// bind references to.
func (m *Module) resolvableDefs() map[string]int {
	out := map[string]int{}
	for _, f := range m.frags {
		for _, d := range f.defs {
			if !d.deleted {
				out[d.ext]++
			}
		}
		for _, a := range f.aliases {
			if !a.deleted {
				out[a.ext]++
			}
		}
	}
	return out
}

// Defined returns the sorted exported definition names.
func (m *Module) Defined() []string {
	set := m.exportedDefs()
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Undefined returns the sorted names referenced but not resolvable
// within the module.
func (m *Module) Undefined() []string {
	defs := m.resolvableDefs()
	set := map[string]bool{}
	for _, f := range m.frags {
		for _, ext := range f.refs {
			if defs[ext] == 0 {
				set[ext] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge combines modules, binding definitions in each operand to
// references in the others.  Multiple exported definitions of a symbol
// constitute an error (per the paper's merge).
func Merge(ms ...*Module) (*Module, error) {
	out := &Module{}
	for _, m := range ms {
		c := m.clone()
		out.frags = append(out.frags, c.frags...)
	}
	var dups []string
	for name, n := range out.exportedDefs() {
		if n > 1 {
			dups = append(dups, name)
		}
	}
	if len(dups) > 0 {
		sort.Strings(dups)
		return nil, fmt.Errorf("jigsaw: merge: multiple definitions of %v", dups)
	}
	return out, nil
}

// Override merges base and over, resolving conflicting bindings in
// favor of over: base's conflicting definitions are removed, so
// references throughout the module (including base's own internal
// references, unless frozen) bind to over's definitions.
func Override(base, over *Module) (*Module, error) {
	b := base.clone()
	o := over.clone()
	overNames := o.exportedDefs()
	for _, f := range b.frags {
		for raw, d := range f.defs {
			if !d.deleted && !d.local && overNames[d.ext] > 0 {
				d.deleted = true
				f.defs[raw] = d
			}
		}
		for id, a := range f.aliases {
			if !a.deleted && !a.local && overNames[a.ext] > 0 {
				a.deleted = true
				f.aliases[id] = a
			}
		}
	}
	out := &Module{frags: append(b.frags, o.frags...)}
	var dups []string
	for name, n := range out.exportedDefs() {
		if n > 1 {
			dups = append(dups, name)
		}
	}
	if len(dups) > 0 {
		sort.Strings(dups)
		return nil, fmt.Errorf("jigsaw: override: multiple definitions of %v", dups)
	}
	return out, nil
}

// forEachExportedEntry visits every non-deleted exported entry,
// allowing mutation through the setters.
func (m *Module) forEachExportedEntry(visit func(ext string, set func(defInfo), frag *Fragment, targetRaw string, isAlias bool)) {
	for _, f := range m.frags {
		f := f
		for raw, d := range f.defs {
			if d.deleted || d.local {
				continue
			}
			raw := raw
			visit(d.ext, func(nd defInfo) { f.defs[raw] = nd }, f, raw, false)
		}
		for id, a := range f.aliases {
			if a.deleted || a.local {
				continue
			}
			id := id
			ai := a
			visit(a.ext, func(nd defInfo) {
				ai.defInfo = nd
				f.aliases[id] = ai
			}, f, a.targetRaw, true)
		}
	}
}

// renameRefs rewrites every module reference from to name.
func (m *Module) renameRefs(from, to string) {
	for _, f := range m.frags {
		for raw, ext := range f.refs {
			if ext == from {
				f.refs[raw] = to
			}
		}
	}
}

// Restrict virtualizes bindings matching re: existing definitions are
// removed and references to them become unbound (available for a later
// merge to satisfy).
func (m *Module) Restrict(re *regexp.Regexp) *Module {
	out := m.clone()
	out.forEachExportedEntry(func(ext string, set func(defInfo), _ *Fragment, _ string, _ bool) {
		if re.MatchString(ext) {
			set(defInfo{ext: ext, deleted: true})
		}
	})
	return out
}

// Project is the complement of Restrict: it virtualizes all exported
// bindings except those matching re.
func (m *Module) Project(re *regexp.Regexp) *Module {
	out := m.clone()
	out.forEachExportedEntry(func(ext string, set func(defInfo), _ *Fragment, _ string, _ bool) {
		if !re.MatchString(ext) {
			set(defInfo{ext: ext, deleted: true})
		}
	})
	return out
}

// CopyAs duplicates the value of each definition matching re under the
// name produced by expanding template (which may use $1-style group
// references), leaving the original binding intact.
func (m *Module) CopyAs(re *regexp.Regexp, template string) (*Module, error) {
	out := m.clone()
	type add struct {
		f   *Fragment
		ext string
		raw string
	}
	var adds []add
	out.forEachExportedEntry(func(ext string, _ func(defInfo), f *Fragment, targetRaw string, _ bool) {
		if re.MatchString(ext) {
			newName := re.ReplaceAllString(ext, template)
			adds = append(adds, add{f, newName, targetRaw})
		}
	})
	for _, a := range adds {
		id := privName("alias$" + a.ext)
		a.f.aliases[id] = aliasInfo{defInfo: defInfo{ext: a.ext}, targetRaw: a.raw}
	}
	var dups []string
	for name, n := range out.exportedDefs() {
		if n > 1 {
			dups = append(dups, name)
		}
	}
	if len(dups) > 0 {
		sort.Strings(dups)
		return nil, fmt.Errorf("jigsaw: copy-as: name collision on %v", dups)
	}
	return out, nil
}

// Hide removes matching definitions from the exported symbol table,
// freezing any internal references to them: the definitions remain
// resolvable inside the module under a private name.
func (m *Module) Hide(re *regexp.Regexp) *Module {
	out := m.clone()
	out.privatize(re, false)
	return out
}

// Show is the complement of Hide: it hides all exported definitions
// except those matching re.
func (m *Module) Show(re *regexp.Regexp) *Module {
	out := m.clone()
	out.privatizeComplement(re)
	return out
}

// Freeze makes matching bindings permanent: internal references are
// bound to the current definition (surviving later overrides), while
// the name remains exported.
func (m *Module) Freeze(re *regexp.Regexp) *Module {
	out := m.clone()
	out.privatize(re, true)
	return out
}

// privatize renames matching exported entries to private names,
// rewrites internal references accordingly, and (for freeze) re-adds
// an exported alias under the original name.
func (m *Module) privatize(re *regexp.Regexp, keepExported bool) {
	type job struct {
		ext  string
		set  func(defInfo)
		f    *Fragment
		raw  string
		info defInfo
	}
	var jobs []job
	m.forEachExportedEntry(func(ext string, set func(defInfo), f *Fragment, targetRaw string, _ bool) {
		if re.MatchString(ext) {
			jobs = append(jobs, job{ext, set, f, targetRaw, defInfo{ext: ext}})
		}
	})
	for _, j := range jobs {
		p := privName(j.ext)
		j.set(defInfo{ext: p, local: true})
		m.renameRefs(j.ext, p)
		if keepExported {
			id := privName("alias$" + j.ext)
			j.f.aliases[id] = aliasInfo{defInfo: defInfo{ext: j.ext}, targetRaw: j.raw}
		}
	}
}

func (m *Module) privatizeComplement(re *regexp.Regexp) {
	neg := func(ext string) bool { return !re.MatchString(ext) }
	type job struct {
		ext string
		set func(defInfo)
	}
	var jobs []job
	m.forEachExportedEntry(func(ext string, set func(defInfo), _ *Fragment, _ string, _ bool) {
		if neg(ext) {
			jobs = append(jobs, job{ext, set})
		}
	})
	for _, j := range jobs {
		p := privName(j.ext)
		j.set(defInfo{ext: p, local: true})
		m.renameRefs(j.ext, p)
	}
}

// RenameMode selects which occurrences Rename rewrites.
type RenameMode int

// Rename modes (the paper: "Names may be references, definitions, or
// both").
const (
	RenameBoth RenameMode = iota
	RenameDefs
	RenameRefs
)

// Rename systematically changes names matching re to the expansion of
// template, in definitions, references, or both.
func (m *Module) Rename(re *regexp.Regexp, template string, mode RenameMode) *Module {
	out := m.clone()
	if mode != RenameRefs {
		out.forEachExportedEntry(func(ext string, set func(defInfo), _ *Fragment, _ string, _ bool) {
			if re.MatchString(ext) {
				set(defInfo{ext: re.ReplaceAllString(ext, template)})
			}
		})
	}
	if mode != RenameDefs {
		for _, f := range out.frags {
			for raw, ext := range f.refs {
				if re.MatchString(ext) {
					f.refs[raw] = re.ReplaceAllString(ext, template)
				}
			}
		}
	}
	return out
}
