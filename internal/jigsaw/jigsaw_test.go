package jigsaw

import (
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"sort"
	"testing"
	"testing/quick"

	"omos/internal/obj"
)

// mkObj builds an object defining the given globals (as zero-filled
// functions) and referencing refs.
func mkObj(t testing.TB, name string, defs, refs []string) *obj.Object {
	t.Helper()
	o := &obj.Object{Name: name, Text: make([]byte, 16*(len(defs)+1))}
	for i, d := range defs {
		o.Syms = append(o.Syms, obj.Symbol{
			Name: d, Kind: obj.SymFunc, Defined: true,
			Section: obj.SecText, Offset: uint64(16 * i), Size: 16,
		})
	}
	for i, r := range refs {
		o.Syms = append(o.Syms, obj.Symbol{Name: r})
		o.Relocs = append(o.Relocs, obj.Reloc{
			Section: obj.SecText, Offset: uint64(16*len(defs) + i), Symbol: r, Kind: obj.RelAbs64,
		})
	}
	if len(refs) > 8 {
		t.Fatal("too many refs for the reloc area")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	return o
}

func mod(t testing.TB, objs ...*obj.Object) *Module {
	t.Helper()
	m, err := NewModule(objs...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func strSetEq(a, b []string) bool {
	x := append([]string(nil), a...)
	y := append([]string(nil), b...)
	sort.Strings(x)
	sort.Strings(y)
	return reflect.DeepEqual(x, y)
}

func TestMergeDuplicateError(t *testing.T) {
	a := mod(t, mkObj(t, "a", []string{"f"}, nil))
	b := mod(t, mkObj(t, "b", []string{"f"}, nil))
	if _, err := Merge(a, b); err == nil {
		t.Fatal("duplicate definition accepted")
	}
}

func TestMergeBindsAcrossOperands(t *testing.T) {
	a := mod(t, mkObj(t, "a", []string{"f"}, []string{"g"}))
	b := mod(t, mkObj(t, "b", []string{"g"}, nil))
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Undefined(); len(got) != 0 {
		t.Fatalf("undefined = %v", got)
	}
	if !strSetEq(m.Defined(), []string{"f", "g"}) {
		t.Fatalf("defined = %v", m.Defined())
	}
}

func TestOperatorsAreFunctional(t *testing.T) {
	base := mod(t, mkObj(t, "a", []string{"f", "g"}, nil))
	before := base.Defined()
	_ = base.Restrict(regexp.MustCompile("^f$"))
	_ = base.Hide(regexp.MustCompile("^g$"))
	_, _ = base.CopyAs(regexp.MustCompile("^f$"), "h")
	if !strSetEq(base.Defined(), before) {
		t.Fatal("operators mutated the operand")
	}
}

// randSyms generates a deterministic symbol population.
func randSyms(r *rand.Rand) []string {
	n := 2 + r.Intn(8)
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sym_%c%d", 'a'+r.Intn(4), i)
	}
	return out
}

// TestRestrictProjectComplement: restrict removes matching exported
// defs; project removes the complement.  Together they partition.
func TestRestrictProjectComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		syms := randSyms(r)
		m := mod(t, mkObj(t, "o", syms, nil))
		re := regexp.MustCompile("_a") // matches a subset
		restricted := m.Restrict(re).Defined()
		projected := m.Project(re).Defined()
		union := append(append([]string(nil), restricted...), projected...)
		if !strSetEq(union, syms) {
			t.Logf("partition broken: %v + %v != %v", restricted, projected, syms)
			return false
		}
		for _, s := range restricted {
			if re.MatchString(s) {
				return false
			}
		}
		for _, s := range projected {
			if !re.MatchString(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHideShowComplement: hide and show partition the namespace the
// same way, but hidden definitions remain resolvable inside.
func TestHideShowComplement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		syms := randSyms(r)
		m := mod(t, mkObj(t, "o", syms, nil))
		re := regexp.MustCompile("_b")
		hidden := m.Hide(re).Defined()
		shown := m.Show(re).Defined()
		union := append(append([]string(nil), hidden...), shown...)
		if !strSetEq(union, syms) {
			return false
		}
		// Hiding must not create undefined references.
		if len(m.Hide(re).Undefined()) != len(m.Undefined()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRenameRoundTrip: renaming with a prefix and stripping it again
// restores the exported set.
func TestRenameRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		syms := randSyms(r)
		m := mod(t, mkObj(t, "o", syms, nil))
		pre := m.Rename(regexp.MustCompile("^(.*)$"), "pfx_$1", RenameBoth)
		back := pre.Rename(regexp.MustCompile("^pfx_(.*)$"), "$1", RenameBoth)
		return strSetEq(back.Defined(), m.Defined())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeDefinedSetCommutes: the exported set of a merge is
// order-independent.
func TestMergeDefinedSetCommutes(t *testing.T) {
	a := mod(t, mkObj(t, "a", []string{"f1", "f2"}, []string{"g1"}))
	b := mod(t, mkObj(t, "b", []string{"g1", "g2"}, []string{"f1"}))
	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strSetEq(ab.Defined(), ba.Defined()) {
		t.Fatalf("merge not commutative: %v vs %v", ab.Defined(), ba.Defined())
	}
	if !strSetEq(ab.Undefined(), ba.Undefined()) {
		t.Fatalf("undefined differ: %v vs %v", ab.Undefined(), ba.Undefined())
	}
}

func TestRestrictThenMergeRebinds(t *testing.T) {
	// The Figure 2 core: restrict a def, merge a replacement, refs
	// rebind to the replacement.
	app := mod(t, mkObj(t, "app", []string{"main"}, []string{"malloc"}))
	libc := mod(t, mkObj(t, "libc", []string{"malloc"}, nil))
	inner, err := Merge(app, libc)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := inner.CopyAs(regexp.MustCompile("^malloc$"), "_REAL_malloc")
	if err != nil {
		t.Fatal(err)
	}
	restricted := copied.Restrict(regexp.MustCompile("^malloc$"))
	if got := restricted.Undefined(); !strSetEq(got, []string{"malloc"}) {
		t.Fatalf("undefined after restrict = %v", got)
	}
	wrapper := mod(t, mkObj(t, "wrap", []string{"malloc"}, []string{"_REAL_malloc"}))
	final, err := Merge(restricted, wrapper)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Undefined(); len(got) != 0 {
		t.Fatalf("undefined = %v", got)
	}
	hidden := final.Hide(regexp.MustCompile("^_REAL_malloc$"))
	if !strSetEq(hidden.Defined(), []string{"main", "malloc"}) {
		t.Fatalf("defined = %v", hidden.Defined())
	}
}

func TestCopyAsCollision(t *testing.T) {
	m := mod(t, mkObj(t, "a", []string{"f", "g"}, nil))
	if _, err := m.CopyAs(regexp.MustCompile("^f$"), "g"); err == nil {
		t.Fatal("copy-as collision accepted")
	}
}

func TestOverrideLeavesNoDuplicates(t *testing.T) {
	a := mod(t, mkObj(t, "a", []string{"f", "g"}, nil))
	b := mod(t, mkObj(t, "b", []string{"f"}, nil))
	m, err := Override(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strSetEq(m.Defined(), []string{"f", "g"}) {
		t.Fatalf("defined = %v", m.Defined())
	}
}

func TestReorderFragments(t *testing.T) {
	a := mkObj(t, "a", []string{"fa"}, nil)
	b := mkObj(t, "b", []string{"fb"}, nil)
	c := mkObj(t, "c", []string{"fc"}, nil)
	m := mod(t, a, b, c)
	rank := map[string]int{"c": 0, "a": 1, "b": 2}
	sorted := m.ReorderFragments(func(o *obj.Object) int { return rank[o.Name] })
	names := []string{}
	for _, o := range sorted.Objects() {
		names = append(names, o.Name)
	}
	if !reflect.DeepEqual(names, []string{"c", "a", "b"}) {
		t.Fatalf("order = %v", names)
	}
	// Original untouched.
	orig := []string{}
	for _, o := range m.Objects() {
		orig = append(orig, o.Name)
	}
	if !reflect.DeepEqual(orig, []string{"a", "b", "c"}) {
		t.Fatalf("original mutated: %v", orig)
	}
}

func TestLocalSymbolsDoNotCollide(t *testing.T) {
	mk := func(name string) *obj.Object {
		o := &obj.Object{Name: name, Text: make([]byte, 32)}
		o.Syms = append(o.Syms,
			obj.Symbol{Name: ".Lhelper", Kind: obj.SymFunc, Bind: obj.BindLocal, Defined: true, Section: obj.SecText, Size: 16},
			obj.Symbol{Name: name + "_entry", Kind: obj.SymFunc, Defined: true, Section: obj.SecText, Offset: 16, Size: 16},
		)
		o.Relocs = append(o.Relocs, obj.Reloc{Section: obj.SecText, Offset: 20, Symbol: ".Lhelper", Kind: obj.RelAbs64})
		return o
	}
	m, err := Merge(mod(t, mk("a")), mod(t, mk("b")))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Undefined(); len(got) != 0 {
		t.Fatalf("undefined = %v", got)
	}
	if !strSetEq(m.Defined(), []string{"a_entry", "b_entry"}) {
		t.Fatalf("defined = %v", m.Defined())
	}
}
