package jigsaw

import (
	"sort"

	"omos/internal/obj"
)

// LinkSym is one definition as seen by the linker.
type LinkSym struct {
	Raw     string // name in the underlying object
	Ext     string // current module-boundary name
	Local   bool   // resolvable within the module but not exported
	Deleted bool   // no longer resolves anything
}

// LinkAlias is a copy-as/freeze alias: an extra name for a raw
// definition within the same fragment.
type LinkAlias struct {
	Ext       string
	TargetRaw string
	Local     bool
}

// LinkView is the linker's read-only view of one fragment: the
// underlying object plus the effective naming maps.
type LinkView struct {
	Obj *obj.Object
	// Defs lists the view of every defined symbol in Obj.
	Defs []LinkSym
	// Aliases lists extra names bound to raw definitions.
	Aliases []LinkAlias
	// RefExt maps every symbol name a relocation may cite (defined or
	// undefined) to its current module-boundary name.
	RefExt map[string]string
}

// LinkViews materializes the per-fragment naming state for the linker,
// in fragment (layout) order.
func (m *Module) LinkViews() []LinkView {
	out := make([]LinkView, 0, len(m.frags))
	for _, f := range m.frags {
		lv := LinkView{Obj: f.o, RefExt: make(map[string]string, len(f.refs)+len(f.defs))}
		for raw, d := range f.defs {
			lv.Defs = append(lv.Defs, LinkSym{Raw: raw, Ext: d.ext, Local: d.local, Deleted: d.deleted})
			// A fragment's internal reference to its own definition
			// follows the definition's current name — unless the
			// definition was deleted (restrict/override), in which
			// case the reference rebinds by name at module scope.
			lv.RefExt[raw] = d.ext
		}
		for raw, ext := range f.refs {
			lv.RefExt[raw] = ext
		}
		for _, a := range f.aliases {
			if a.deleted {
				continue
			}
			lv.Aliases = append(lv.Aliases, LinkAlias{Ext: a.ext, TargetRaw: a.targetRaw, Local: a.local})
		}
		sort.Slice(lv.Defs, func(i, j int) bool { return lv.Defs[i].Raw < lv.Defs[j].Raw })
		sort.Slice(lv.Aliases, func(i, j int) bool { return lv.Aliases[i].Ext < lv.Aliases[j].Ext })
		out = append(out, lv)
	}
	return out
}

// ReorderFragments returns a module with fragments stably sorted by
// ascending rank.  The monitor package uses this to apply
// locality-of-reference orderings derived from execution traces
// (§4.1's reordering optimization); fragments with equal rank keep
// their relative order.
func (m *Module) ReorderFragments(rank func(o *obj.Object) int) *Module {
	out := m.clone()
	sort.SliceStable(out.frags, func(i, j int) bool {
		return rank(out.frags[i].o) < rank(out.frags[j].o)
	})
	return out
}

// Objects returns the underlying objects in fragment order (for
// diagnostics and size accounting).
func (m *Module) Objects() []*obj.Object {
	out := make([]*obj.Object, len(m.frags))
	for i, f := range m.frags {
		out[i] = f.o
	}
	return out
}
