package omos_test

import (
	"strings"
	"testing"

	"omos"
)

func newSys(t *testing.T) *omos.System {
	t.Helper()
	sys, err := omos.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeQuickstart(t *testing.T) {
	sys := newSys(t)
	err := sys.DefineLibrary("/lib/l", `
(constraint-list "T" 0x1000000 "D" 0x41000000)
(source "c" "int twice(int x) { return x + x; }")
`)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Define("/bin/p", `
(merge /lib/crt0.o (source "c" "extern int twice(int); int main() { return twice(21); }") /lib/l)
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("/bin/p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
	res2, err := sys.RunBootstrap("/bin/p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExitCode != 42 {
		t.Fatalf("bootstrap exit = %d", res2.ExitCode)
	}
	if res2.Clock.Sys <= res.Clock.Sys {
		t.Fatal("bootstrap should cost more system time than integrated exec")
	}
}

func TestFacadeCompileAndAssemble(t *testing.T) {
	sys := newSys(t)
	paths, err := sys.CompileC("/obj/u", "util", `
int add3(int a, int b, int c) { return a + b + c; }
int g = 9;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if err := sys.Assemble("/obj/extra.o", `
.text
seven:
    movi r0, 7
    ret
`); err != nil {
		t.Fatal(err)
	}
	bp := "(merge /lib/crt0.o (source \"c\" \"extern int add3(int,int,int); extern int seven(); extern int g; int main() { return add3(seven(), g, g); }\")"
	for _, p := range paths {
		bp += " " + p
	}
	bp += " /obj/extra.o)"
	if err := sys.Define("/bin/q", bp); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("/bin/q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 25 {
		t.Fatalf("exit = %d, want 25", res.ExitCode)
	}
}

func TestFacadePartialAndSymbols(t *testing.T) {
	sys := newSys(t)
	if err := sys.DefineLibrary("/lib/m", `(source "c" "int sq(int x) { return x * x; }")`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Define("/bin/r", `
(merge /lib/crt0.o (source "c" "extern int sq(int); int main() { return sq(6); }") /lib/m)
`); err != nil {
		t.Fatal(err)
	}
	if err := sys.BuildPartialExec("/bin/r", "/bin/r.exe"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunPartial("/bin/r.exe", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 36 {
		t.Fatalf("partial exit = %d", res.ExitCode)
	}
	syms, err := sys.Symbols("/lib/m", "sq")
	if err != nil {
		t.Fatal(err)
	}
	if syms["sq"] == 0 {
		t.Fatal("sq bound at 0")
	}
	if _, err := sys.Symbols("/lib/m", "missing"); err == nil {
		t.Fatal("phantom symbol bound")
	}
}

func TestFacadeOutputAndList(t *testing.T) {
	sys := newSys(t)
	err := sys.Define("/bin/hello", `
(merge /lib/crt0.o (source "c" "
char msg[] = \"hey\\n\";
int main() { syscall(2, 1, msg, 4); return 0; }
"))
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run("/bin/hello", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "hey\n" {
		t.Fatalf("output = %q", res.Output)
	}
	paths := sys.List("/bin")
	if len(paths) != 1 || !strings.HasPrefix(paths[0], "/bin/") {
		t.Fatalf("list = %v", paths)
	}
}

func TestFaultSymbolization(t *testing.T) {
	sys := newSys(t)
	// A program that jumps through a null pointer inside a named
	// function: the error must name the function.
	err := sys.Define("/bin/crash", `
(merge /lib/crt0.o (source "c" "
int boom(int *p) { return *p; }
int main() { return boom(0); }
"))
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run("/bin/crash", nil)
	if err == nil {
		t.Fatal("crash did not fault")
	}
	if !strings.Contains(err.Error(), "pc in boom") {
		t.Fatalf("fault not symbolized: %v", err)
	}
}
