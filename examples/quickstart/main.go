// Quickstart: boot an OMOS system, define a shared library and a
// program as meta-objects, run the program twice, and watch the second
// invocation hit the image cache — the paper's core mechanism.
package main

import (
	"fmt"
	"log"

	"omos"
)

func main() {
	sys, err := omos.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// A library meta-object in the shape of the paper's Figure 1: a
	// default address constraint followed by the construction plan.
	err = sys.DefineLibrary("/lib/libgreet", `
(constraint-list "T" 0x1000000 "D" 0x41000000)
(merge
  (source "c" "
int greetings = 3;
int write_str(char *s) {
    int n;
    n = 0;
    while (s[n]) { n = n + 1; }
    return syscall(2, 1, s, n);
}
int greet(char *who) {
    write_str(\"hello, \");
    write_str(who);
    write_str(\"\\n\");
    return greetings;
}
"))
`)
	if err != nil {
		log.Fatal(err)
	}

	// A program meta-object: crt0 + inline source + the library.
	err = sys.Define("/bin/hello", `
(merge /lib/crt0.o
  (source "c" "
extern int greet(char *who);
int main(int argc, char **argv) {
    int n;
    n = greet(\"world\");
    if (argc > 1) { greet(argv[1]); }
    return n;
}
")
  /lib/libgreet)
`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Run("/bin/hello", []string{"OMOS"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)
	fmt.Printf("exit=%d  user=%d sys=%d server=%d cycles\n",
		res.ExitCode, res.Clock.User, res.Clock.Sys, res.Clock.Server)

	// Run it again: the image is cached, so the server does no
	// construction work — only a lookup and a mapping.
	res2, err := sys.Run("/bin/hello", nil)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Srv.Stats()
	fmt.Printf("second run: server=%d cycles (first: %d); cache hits=%d, images built=%d\n",
		res2.Clock.Server, res.Clock.Server, st.CacheHits, st.ImagesBuilt)

	mem := sys.MemStats()
	fmt.Printf("resident=%dKB shared-frames=%d\n", mem.Bytes()/1024, mem.SharedFrames)
}
