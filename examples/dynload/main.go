// Dynload demonstrates the two dynamic-loading facets of §4.2 and §5:
//
//  1. Partial-image shared libraries: the client is an ordinary
//     executable file whose library references go through generated
//     stubs; the first call DYNLOADs the library from OMOS and binds
//     through a function hash table.
//
//  2. The dld-style dynamic loading interface: a client asks OMOS for
//     the bound values of symbols from any meta-object.
package main

import (
	"fmt"
	"log"

	"omos"
)

func main() {
	sys, err := omos.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	err = sys.DefineLibrary("/lib/libmath", `
(constraint-list "T" 0x1000000 "D" 0x41000000)
(source "c" "
int square(int x) { return x * x; }
int cube(int x)   { return x * square(x); }
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
")
`)
	if err != nil {
		log.Fatal(err)
	}
	err = sys.Define("/bin/calc", `
(merge /lib/crt0.o
  (source "c" "
extern int square(int);
extern int cube(int);
extern int fib(int);
int main() {
    return square(3) + cube(2) + fib(10);  /* 9 + 8 + 55 = 72 */
}
")
  /lib/libmath)
`)
	if err != nil {
		log.Fatal(err)
	}

	// Build the partial-image executable: a complete binary with
	// stubs, exported to the (simulated) filesystem like any program.
	if err := sys.BuildPartialExec("/bin/calc", "/bin/calc.exe"); err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunPartial("/bin/calc.exe", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial-image run: exit=%d (want 72)\n", res.ExitCode)
	fmt.Println("the first call to each library routine performed a DYNLOAD +")
	fmt.Println("hash-table lookup; later calls went through the branch slot.")

	// Run again: the library image and its hash table are cached in
	// the server, so only the per-process binding repeats.
	res2, err := sys.RunPartial("/bin/calc.exe", nil)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Srv.Stats()
	fmt.Printf("second run: exit=%d; images built=%d (no rebuild), cache hits=%d\n",
		res2.ExitCode, st.ImagesBuilt, st.CacheHits)

	// The §5 interface: ask OMOS for bound symbol values directly.
	syms, err := sys.Symbols("/lib/libmath", "square", "cube", "fib")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dld-style symbol query against /lib/libmath:")
	for _, name := range []string{"square", "cube", "fib"} {
		fmt.Printf("  %-6s bound at %#x\n", name, syms[name])
	}
}
