// Reorder demonstrates OMOS's dynamic program monitoring and
// transformation (§4.1, §6): the server transparently interposes
// monitoring wrappers around every routine, derives a preferred
// routine order from the execution trace, and re-links the program
// with the hot routines packed together — improving paging behaviour
// with no recompilation.
package main

import (
	"fmt"
	"log"

	"omos"
	"omos/internal/mgraph"
	"omos/internal/monitor"
	"omos/internal/workload"
)

func main() {
	sys, err := omos.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.MakeFixtures(sys.Kern.FS); err != nil {
		log.Fatal(err)
	}
	if err := sys.DefineLibrary("/lib/libc", workload.LibcBlueprint()); err != nil {
		log.Fatal(err)
	}
	for i, lib := range workload.ExtraLibs() {
		bp := fmt.Sprintf("(constraint-list \"T\" %#x \"D\" %#x)\n(merge (source \"c\" %q))",
			0x0200_0000+uint64(i)*0x40_0000, 0x4200_0000+uint64(i)*0x40_0000, lib.Source)
		if err := sys.DefineLibrary("/lib/"+lib.Name, bp); err != nil {
			log.Fatal(err)
		}
	}

	// The codegen workload: ~hundreds of routines across many units,
	// with a hot chain scattered one routine per unit — the worst
	// case for the default layout.
	cg := workload.CodegenParams{Units: 28, FuncsPerUnit: 24, HotIters: 12}
	inner := workload.CodegenBlueprint(cg)
	if err := sys.Define("/bin/codegen", inner); err != nil {
		log.Fatal(err)
	}

	// Step 1: a monitored implementation.  The "monitor" specializer
	// wraps every routine with a logging stub via module operations.
	reg := monitor.NewRegistry()
	sys.Srv.RegisterSpecializer("monitor", func(args []string, v *mgraph.Value) (*mgraph.Value, error) {
		m, err := monitor.Wrap(v.Module, reg, nil)
		if err != nil {
			return nil, err
		}
		out := *v
		out.Module = m
		return &out, nil
	})
	if err := sys.Define("/bin/codegen.mon", `(specialize "monitor" `+inner+`)`); err != nil {
		log.Fatal(err)
	}
	mon, err := sys.Run("/bin/codegen.mon", nil)
	if err != nil {
		log.Fatal(err)
	}
	order := monitor.OrderFromTrace(mon.Trace, reg)
	counts := monitor.CallCounts(mon.Trace, reg)
	fmt.Printf("monitoring run: %d calls, %d distinct routines\n", len(mon.Trace), len(order))
	fmt.Printf("hottest: %v\n", monitor.HotNames(counts)[:min(5, len(order))])

	// Step 2: feed the trace back as a reordering specialization.
	sys.Srv.RegisterSpecializer("reorder", func(args []string, v *mgraph.Value) (*mgraph.Value, error) {
		out := *v
		out.Module = monitor.Reorder(v.Module, order)
		return &out, nil
	})
	if err := sys.Define("/bin/codegen.opt", `(specialize "reorder" `+inner+`)`); err != nil {
		log.Fatal(err)
	}

	// Step 3: compare steady-state invocations (one warm-up run each,
	// so the one-time image construction is out of the picture — as at
	// a paper-style installation).
	for _, name := range []string{"/bin/codegen", "/bin/codegen.opt"} {
		if _, err := sys.Run(name, nil); err != nil {
			log.Fatal(err)
		}
	}
	before, err := sys.Run("/bin/codegen", nil)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sys.Run("/bin/codegen.opt", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default layout:   %7d elapsed cycles, %d text pages touched\n",
		before.Clock.Elapsed(), before.TextPages)
	fmt.Printf("reordered layout: %7d elapsed cycles, %d text pages touched\n",
		after.Clock.Elapsed(), after.TextPages)
	speedup := 100 * (1 - float64(after.Clock.Elapsed())/float64(before.Clock.Elapsed()))
	fmt.Printf("speedup: %.1f%% (paper reports >10%% on average)\n", speedup)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
