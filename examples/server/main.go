// Server demonstrates OMOS's server-nature features beyond plain
// linking: exporting namespace entries as "#!" Unix files (§5),
// evicting cached images so a library fix propagates (§2.1/§9), the
// versioning safety of partial images (§4.2), and federating OMOS
// daemons into a mesh over the network (§10).
package main

import (
	"fmt"
	"log"
	"net"

	"omos"
	"omos/internal/daemon"
	"omos/internal/ipc"
	"omos/internal/mesh"
)

// member stands up one mesh daemon: a simulated machine with the
// object server attached, serving the wire protocol, joined to the
// fleet by address.
func member(sys *omos.System, secret string) (*mesh.Node, string) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	node, err := mesh.New(sys.Srv, mesh.Config{Self: l.Addr().String(), Secret: secret})
	if err != nil {
		log.Fatal(err)
	}
	b := daemon.New(sys)
	b.Mesh = node
	srv := ipc.NewServer(b)
	srv.MeshSecret = secret
	go srv.Serve(l)
	return node, l.Addr().String()
}

func main() {
	const secret = "example-mesh"

	// ---- Server A: owns a shared library ----
	sysA, err := omos.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defineLib := func(factor int) {
		err := sysA.DefineLibrary("/shared/libscale", fmt.Sprintf(`
(constraint-list "T" 0x3000000 "D" 0x43000000)
(source "c" "int scale(int x) { return x * %d; }")
`, factor))
		if err != nil {
			log.Fatal(err)
		}
	}
	defineLib(2)
	nodeA, addrA := member(sysA, secret)
	_ = nodeA
	fmt.Printf("server A listening on %s, owns /shared/libscale\n", addrA)

	// ---- Server B: joins the mesh and mounts A's namespace ----
	sysB, err := omos.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	nodeB, addrB := member(sysB, secret)
	nodeA.AddPeer(addrB)
	nodeB.AddPeer(addrA)
	if err := nodeB.MountPeer("/shared", addrA); err != nil {
		log.Fatal(err)
	}
	err = sysB.Define("/bin/app", `
(merge /lib/crt0.o
  (source "c" "extern int scale(int); int main() { return scale(21); }")
  /shared/libscale)
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sysB.Run("/bin/app", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server B ran /bin/app against A's library: exit=%d\n", res.ExitCode)
	fmt.Println(nodeB.StatsLine())

	// ---- Unix-namespace export: #! files (§5) ----
	if err := sysB.RT.ExportToUnix("/bin/app", "/usr/bin/app"); err != nil {
		log.Fatal(err)
	}
	p, err := sysB.RT.ExecPath("/usr/bin/app", nil)
	if err != nil {
		log.Fatal(err)
	}
	code, err := sysB.Kern.RunToExit(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exec of the #! export /usr/bin/app: exit=%d\n", code)
	p.Release()

	// ---- Library fix + eviction (§2.1: "a library fix is instantly
	// incorporated into all clients") ----
	defineLib(3) // the fix, on server A
	// B evicts its imported copy and cached images, then refetches.
	sysB.Srv.Remove("/shared/libscale")
	n := sysB.Srv.Evict("/bin/app")
	n += sysB.Srv.Evict("/shared/libscale")
	res2, err := sysB.Run("/bin/app", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the library fix (evicted %d images): exit=%d\n", n, res2.ExitCode)

	// ---- Partial-image versioning (§4.2) ----
	if err := sysB.BuildPartialExec("/bin/app", "/bin/app.exe"); err != nil {
		log.Fatal(err)
	}
	r3, err := sysB.RunPartial("/bin/app.exe", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial image bound at current version: exit=%d\n", r3.ExitCode)
	// Change the library locally; the stale partial image must refuse.
	// The hijack defense blocks the silent re-bind of a live program's
	// symbol, so the redefinition must be explicit.
	v5 := `(source "c" "int scale(int x) { return x * 5; }")`
	if err := sysB.DefineLibrary("/shared/libscale", v5); err == nil {
		log.Fatal("silent re-bind of a live program's symbol was not blocked")
	} else {
		fmt.Printf("hijack defense blocked the silent re-bind:\n  %v\n", err)
	}
	if err := sysB.Srv.DefineLibraryAllow("/shared/libscale", v5, true); err != nil {
		log.Fatal(err)
	}
	if _, err := sysB.RunPartial("/bin/app.exe", nil); err != nil {
		fmt.Printf("stale partial image correctly rejected:\n  %v\n", err)
	} else {
		log.Fatal("stale partial image was not rejected")
	}
}
