// Interpose reproduces Figure 2 of the paper: transparently trap
// calls to malloc by inserting a wrapper with the Jigsaw module
// operators — copy-as stashes the original under _REAL_malloc,
// restrict virtualizes the binding, merge supplies the replacement,
// and hide freezes the wrapper's private access to the original.
//
// No source is recompiled and no object file is rewritten: the whole
// transformation is namespace manipulation at link level.
package main

import (
	"fmt"
	"log"

	"omos"
)

func main() {
	sys, err := omos.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// The application and its libc, as ordinary objects.
	if err := putSources(sys); err != nil {
		log.Fatal(err)
	}

	// The untouched program: malloc returns block addresses; the app
	// reports how many bytes it allocated.
	err = sys.Define("/bin/app", `(merge /lib/crt0.o /obj/app /obj/libc)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run("/bin/app", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain run:      %s", res.Output)

	// Figure 2, verbatim structure:
	//
	//   (hide "_REAL_malloc"
	//     (merge
	//       (restrict "^malloc$"
	//         (copy_as "^malloc$" "_REAL_malloc"
	//           (merge /obj/app /obj/libc)))
	//       /obj/test_malloc))
	err = sys.Define("/bin/app-traced", `
(merge /lib/crt0.o
  (hide "_REAL_malloc"
    (merge
      (restrict "^malloc$"
        (copy_as "^malloc$" "_REAL_malloc"
          (merge /obj/app /obj/libc)))
      /obj/test_malloc)))
`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sys.Run("/bin/app-traced", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interposed run: %s", res2.Output)
	fmt.Println("every malloc call went through the tracing wrapper;")
	fmt.Println("the wrapper reached the original via the hidden _REAL_malloc binding.")
}

func putSources(sys *omos.System) error {
	// libc: a bump allocator.
	if _, err := sys.CompileC("/obj/libc-parts", "libc", `
int heap_cur = 0;
char *malloc(int n) {
    int p;
    if (heap_cur == 0) { heap_cur = syscall(8, 0); }
    p = heap_cur;
    heap_cur = heap_cur + (n + 7) / 8 * 8;
    syscall(8, heap_cur);
    return p;
}
int write_str(char *s) {
    int n;
    n = 0;
    while (s[n]) { n = n + 1; }
    return syscall(2, 1, s, n);
}
char numbuf[24];
int write_num(int v) {
    int i;
    i = 23;
    if (v == 0) { numbuf[i] = '0'; i = i - 1; }
    while (v > 0) { numbuf[i] = '0' + v % 10; v = v / 10; i = i - 1; }
    return syscall(2, 1, &numbuf[i + 1], 23 - i);
}
char nl[] = "\n";
int write_nl() { return syscall(2, 1, nl, 1); }
`); err != nil {
		return err
	}
	// The app allocates three blocks.
	if _, err := sys.CompileC("/obj/app-parts", "app", `
extern char *malloc(int n);
extern int write_str(char *s);
extern int write_num(int v);
extern int write_nl();
int main() {
    char *a;
    char *b;
    char *c;
    a = malloc(16);
    b = malloc(100);
    c = malloc(8);
    write_str("allocated span: ");
    write_num((c - a) + 8);
    write_nl();
    return 0;
}
`); err != nil {
		return err
	}
	// The tracing wrapper (Figure 2's /lib/test_malloc.o): counts
	// calls and delegates to the preserved original.
	if _, err := sys.CompileC("/obj/tm-parts", "test_malloc", `
extern char *_REAL_malloc(int n);
extern int write_str(char *s);
extern int write_num(int v);
extern int write_nl();
int malloc_calls = 0;
char *malloc(int n) {
    malloc_calls = malloc_calls + 1;
    write_str("[malloc #");
    write_num(malloc_calls);
    write_str(" size ");
    write_num(n);
    write_str("] ");
    return _REAL_malloc(n);
}
`); err != nil {
		return err
	}
	// Group each unit's objects behind one meta-object name so the
	// blueprints above can reference them as single operands.
	group := func(meta, dir string) error {
		paths := sys.List(dir)
		bp := "(merge"
		for _, p := range paths {
			bp += " " + p
		}
		bp += ")"
		return sys.Define(meta, bp)
	}
	if err := group("/obj/libc", "/obj/libc-parts"); err != nil {
		return err
	}
	if err := group("/obj/app", "/obj/app-parts"); err != nil {
		return err
	}
	return group("/obj/test_malloc", "/obj/tm-parts")
}
