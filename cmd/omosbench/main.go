// Command omosbench regenerates the paper's evaluation: every
// sub-table of Table 1, the reordering and memory experiments, the
// link-time comparison, the cache behaviour, and the constraint-system
// demonstration.  EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	omosbench [-quick] [-table id[,id...]] [-iters n] [-json path] [-list]
//
// Table ids: 1a 1b 1c 1d reorder memory linktime cache constraints
// schemes binding cacheoff monitor clients warmrestart concurrency
// degraded rebase buildgraph resolution upgrade soak ipcmux mesh all.
// -list prints
// every table id with a
// one-line description and exits.  -json additionally writes every
// table that ran to the given path as JSON (table -> rows -> metric
// map), for CI artifacts and offline comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"omos/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "small workloads and few iterations")
	tables := flag.String("table", "all", "comma-separated table ids")
	iters := flag.Int("iters", 0, "override iteration count")
	jsonPath := flag.String("json", "", "also write the tables that ran to this path as JSON")
	list := flag.Bool("list", false, "print the table ids and exit")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *iters > 0 {
		cfg.ItersHPUX = *iters
		cfg.ItersMach = *iters
	}

	type exp struct {
		id   string
		desc string
		run  func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"1a", "Table 1a: ls in a one-entry directory (HP-UX)", bench.Table1a},
		{"1b", "Table 1b: ls -laF in a populated directory (HP-UX)", bench.Table1b},
		{"1c", "Table 1c: codegen compute workload (HP-UX)", bench.Table1c},
		{"1d", "Table 1d: Mach 3.0 cost model, bootstrap vs integrated exec", bench.Table1d},
		{"reorder", "procedure reordering: fault counts and touched pages (§4.1)", bench.Reorder},
		{"memory", "physical memory sharing across concurrent clients", bench.Memory},
		{"linktime", "link-time comparison: static vs dynamic vs OMOS (§2.1)", bench.LinkTime},
		{"cache", "image cache: cold build vs warm hit", bench.CacheWarmCold},
		{"schemes", "linkage schemes: direct vs branch-table vs PIC", bench.Schemes},
		{"cacheoff", "cache ablation: every instantiation relinks", bench.CacheAblation},
		{"monitor", "monitoring instrumentation overhead (§4.1)", bench.MonitorOverhead},
		{"clients", "server throughput under concurrent clients", bench.Clients},
		{"binding", "eager vs lazy binding ablation", bench.BindAblation},
		{"constraints", "constraint system: conflicting placement requests (§3.5)", bench.Constraints},
		{"warmrestart", "persistent store: cold boot vs warm restart", bench.WarmRestart},
		{"concurrency", "concurrent clients: singleflight, lock decomposition, parallel builds", bench.Concurrency},
		{"degraded", "degraded store: warm-hit latency under 1% injected read faults", bench.Degraded},
		{"rebase", "rebase fast path: full relink vs slide at 1/4/16 distinct bases", bench.Rebase},
		{"buildgraph", "checkpointed build graph: cold build vs crash-resume at 25/50/75%", bench.Buildgraph},
		{"resolution", "stable resolution cache: symbol search vs binding replay vs invalidation", bench.Resolution},
		{"upgrade", "live upgrade: warm instantiation stream while flipping 6 libraries", bench.Upgrade},
		{"soak", "overload soak: shed rate and latency at 1x/4x/16x saturation (wall clock)", bench.Soak},
		{"ipcmux", "tagged pipelining: ops/sec on one connection, serial v1 vs pipelined v2", bench.IPCMux},
		{"mesh", "federated mesh: 4-daemon fleet vs 4 independent daemons, bytes built and warm ops/sec", bench.Mesh},
	}
	if *list {
		for _, e := range all {
			fmt.Printf("%-12s %s\n", e.id, e.desc)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(id)] = true
	}
	var ran []*bench.Table
	for _, e := range all {
		if !want["all"] && !want[e.id] {
			continue
		}
		t, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omosbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		ran = append(ran, t)
	}
	if len(ran) == 0 {
		fmt.Fprintln(os.Stderr, "omosbench: no matching tables (use -list to see the ids, or -table all)")
		os.Exit(2)
	}
	if *jsonPath != "" {
		blob, err := bench.TablesJSON(ran)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omosbench: encoding json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "omosbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
