// Command omosbench regenerates the paper's evaluation: every
// sub-table of Table 1, the reordering and memory experiments, the
// link-time comparison, the cache behaviour, and the constraint-system
// demonstration.  EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	omosbench [-quick] [-table id[,id...]] [-iters n]
//
// Table ids: 1a 1b 1c 1d reorder memory linktime cache constraints schemes binding cacheoff monitor clients all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"omos/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "small workloads and few iterations")
	tables := flag.String("table", "all", "comma-separated table ids")
	iters := flag.Int("iters", 0, "override iteration count")
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *iters > 0 {
		cfg.ItersHPUX = *iters
		cfg.ItersMach = *iters
	}

	type exp struct {
		id  string
		run func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"1a", bench.Table1a},
		{"1b", bench.Table1b},
		{"1c", bench.Table1c},
		{"1d", bench.Table1d},
		{"reorder", bench.Reorder},
		{"memory", bench.Memory},
		{"linktime", bench.LinkTime},
		{"cache", bench.CacheWarmCold},
		{"schemes", bench.Schemes},
		{"cacheoff", bench.CacheAblation},
		{"monitor", bench.MonitorOverhead},
		{"clients", bench.Clients},
		{"binding", bench.BindAblation},
		{"constraints", bench.Constraints},
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, e := range all {
		if !want["all"] && !want[e.id] {
			continue
		}
		t, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omosbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "omosbench: no matching tables (use -table 1a,1b,1c,1d,reorder,memory,linktime,cache,constraints,schemes,binding,cacheoff,monitor,clients or all)")
		os.Exit(2)
	}
}
