// Command omos is the client CLI for an omosd daemon.  It mirrors the
// paper's user-facing surface: defining meta-objects, populating the
// namespace, and invoking programs whose images the server constructs
// and caches.
//
// Usage:
//
//	omos [-server addr] [-timeout D] [-connect-timeout D] [-retries N] <command> [args]
//
// -timeout bounds each call (a deadline overrun is reported, never a
// hang); -retries sets how many times idempotent operations retry on
// transport failure (with exponential backoff and one transparent
// reconnect).  run/run-boot are never retried automatically.
//
// Commands:
//
//	ping
//	ls [prefix]                 list the server namespace
//	define <path> <file>        define a program meta-object from a blueprint file
//	define-lib <path> <file>    define a library meta-object
//	asm <path> <file.s>         assemble and store an object
//	cc <dir> <unit> <file.c>    compile mini-C and store the objects
//	put <path> <file.rof>       store an encoded ROF object
//	rm <path>                   remove a namespace entry
//	run <path> [args...]        run a program (integrated exec)
//	run-boot <path> [args...]   run via the bootstrap loader
//	instantiate <path>...       build (or warm-hit) images for several
//	                            meta-objects in one batched request;
//	                            per-item results, exit 1 on any failure
//	dis <path>                  disassemble a stored object
//	explain <symbol>            binding provenance: which definer each
//	                            cached image binds the symbol to, how
//	                            it was resolved, at which generation
//	stats                       server and memory statistics
//	health                      daemon liveness + robustness counters
//	                            (exits 1 when draining, degraded, or a
//	                            live-upgrade rollback is in progress)
//	graph                       build-graph report: node counters,
//	                            recent instantiation runs, event tail
//	upgrade [--canary=N%] [--prog] <path> <file> ...
//	                            open a live-upgrade epoch (N% canary)
//	                            and stage new definitions; running
//	                            processes keep v1, the canary cohort
//	                            builds v2
//	upgrade --commit            apply the staged definitions atomically
//	upgrade --rollback [reason] abort the epoch, restoring v1 bindings
//	upgrade --status            report the upgrade engine's state
//
// -allow-rebind makes define/define-lib/rm explicit about re-binding:
// without it the daemon refuses any mutation that would silently
// re-bind a live program's symbol to a different definer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"omos/internal/ipc"
)

func main() {
	server := flag.String("server", "127.0.0.1:7070", "omosd address")
	timeout := flag.Duration("timeout", ipc.DefaultOptions.CallTimeout, "per-call deadline (0: none)")
	connectTimeout := flag.Duration("connect-timeout", ipc.DefaultOptions.ConnectTimeout, "dial deadline (0: none)")
	retries := flag.Int("retries", ipc.DefaultOptions.Retries, "retry attempts for idempotent operations")
	backoff := flag.Duration("backoff", ipc.DefaultOptions.Backoff, "initial retry backoff (doubles per attempt)")
	allowRebind := flag.Bool("allow-rebind", false, "let define/define-lib/rm re-bind symbols of live programs")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c, err := ipc.DialWith(*server, ipc.Options{
		ConnectTimeout: *connectTimeout,
		CallTimeout:    *timeout,
		Retries:        *retries,
		Backoff:        *backoff,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ping":
		resp := call(c, &ipc.Request{Op: ipc.OpPing})
		fmt.Println(resp.Text)
	case "ls":
		prefix := "/"
		if len(rest) > 0 {
			prefix = rest[0]
		}
		resp := call(c, &ipc.Request{Op: ipc.OpList, Path: prefix})
		for _, p := range resp.Paths {
			fmt.Println(p)
		}
	case "define", "define-lib":
		if len(rest) != 2 {
			usage()
		}
		text := readFile(rest[1])
		op := ipc.OpDefine
		if cmd == "define-lib" {
			op = ipc.OpDefineLib
		}
		call(c, &ipc.Request{Op: op, Path: rest[0], Text: text, AllowRebind: *allowRebind})
	case "asm":
		if len(rest) != 2 {
			usage()
		}
		call(c, &ipc.Request{Op: ipc.OpAssemble, Path: rest[0], Text: readFile(rest[1])})
	case "cc":
		if len(rest) != 3 {
			usage()
		}
		resp := call(c, &ipc.Request{Op: ipc.OpCompile, Path: rest[0], Unit: rest[1], Text: readFile(rest[2])})
		for _, p := range resp.Paths {
			fmt.Println(p)
		}
	case "put":
		if len(rest) != 2 {
			usage()
		}
		blob, err := os.ReadFile(rest[1])
		if err != nil {
			fatal(err)
		}
		call(c, &ipc.Request{Op: ipc.OpPutObject, Path: rest[0], Blob: blob})
	case "rm":
		if len(rest) != 1 {
			usage()
		}
		call(c, &ipc.Request{Op: ipc.OpRemove, Path: rest[0], AllowRebind: *allowRebind})
	case "run", "run-boot":
		if len(rest) < 1 {
			usage()
		}
		op := ipc.OpRun
		if cmd == "run-boot" {
			op = ipc.OpRunBoot
		}
		resp := call(c, &ipc.Request{Op: op, Path: rest[0], Args: rest[1:]})
		fmt.Print(resp.Output)
		fmt.Fprintf(os.Stderr, "exit=%d user=%d sys=%d server=%d wait=%d cycles\n",
			resp.ExitCode, resp.User, resp.Sys, resp.Server, resp.Wait)
		os.Exit(int(resp.ExitCode))
	case "instantiate":
		if len(rest) < 1 {
			usage()
		}
		res, err := c.InstantiateBatch(rest)
		if err != nil {
			fatal(err)
		}
		failed := 0
		for _, r := range res {
			if r.Err != nil {
				failed++
				fmt.Printf("%s: error: %v\n", r.Path, r.Err)
			} else {
				fmt.Printf("%s: ok\n", r.Path)
			}
		}
		if failed > 0 {
			os.Exit(1)
		}
	case "dis":
		if len(rest) != 1 {
			usage()
		}
		resp := call(c, &ipc.Request{Op: ipc.OpDisasm, Path: rest[0]})
		fmt.Print(resp.Text)
	case "explain":
		if len(rest) != 1 {
			usage()
		}
		resp := call(c, &ipc.Request{Op: ipc.OpExplain, Path: rest[0]})
		fmt.Print(resp.Text)
	case "stats":
		resp := call(c, &ipc.Request{Op: ipc.OpStats})
		fmt.Print(resp.Text)
	case "graph":
		resp := call(c, &ipc.Request{Op: ipc.OpGraph})
		fmt.Print(resp.Text)
	case "upgrade":
		if len(rest) == 0 {
			usage()
		}
		switch rest[0] {
		case "--commit", "commit":
			call(c, &ipc.Request{Op: ipc.OpUpgrade, Unit: "commit"})
			fmt.Println("upgrade committed")
		case "--rollback", "rollback":
			call(c, &ipc.Request{Op: ipc.OpRollback, Text: strings.Join(rest[1:], " ")})
			fmt.Println("upgrade rolled back")
		case "--status", "status":
			resp := call(c, &ipc.Request{Op: ipc.OpUpgradeStatus})
			fmt.Println(resp.Text)
		default:
			pct := ""
			isLib := true
			i := 0
			for ; i < len(rest) && strings.HasPrefix(rest[i], "--"); i++ {
				switch {
				case strings.HasPrefix(rest[i], "--canary="):
					pct = strings.TrimSuffix(strings.TrimPrefix(rest[i], "--canary="), "%")
				case rest[i] == "--prog":
					isLib = false
				default:
					usage()
				}
			}
			pairs := rest[i:]
			if len(pairs) == 0 || len(pairs)%2 != 0 {
				usage()
			}
			resp := call(c, &ipc.Request{Op: ipc.OpUpgrade, Unit: "start", Text: pct})
			fmt.Printf("epoch %s opened\n", resp.Text)
			kind := "prog"
			if isLib {
				kind = "lib"
			}
			for j := 0; j < len(pairs); j += 2 {
				call(c, &ipc.Request{Op: ipc.OpUpgrade, Unit: "stage",
					Path: pairs[j], Text: readFile(pairs[j+1]), Args: []string{kind}})
				fmt.Printf("staged %s\n", pairs[j])
			}
		}
	case "health":
		resp := call(c, &ipc.Request{Op: ipc.OpHealth})
		if resp.Health == nil {
			fatal(fmt.Errorf("daemon did not report health"))
		}
		h := resp.Health
		fmt.Printf("uptime=%s inflight-builds=%d recovered=%d quarantined=%d warm-loaded=%d "+
			"queue-depth=%d shed=%d build-timeouts=%d scrub-checked=%d scrub-quarantined=%d "+
			"degraded=%v draining=%v\n",
			(time.Duration(h.UptimeMS) * time.Millisecond).Round(time.Millisecond),
			h.InflightBuilds, h.Recovered, h.Quarantined, h.WarmLoaded,
			h.QueueDepth, h.Shed, h.BuildTimeouts, h.ScrubChecked, h.ScrubQuarantined,
			h.Degraded, h.Draining)
		if h.Degraded {
			fmt.Printf("degraded-reason: %s\n", h.DegradedReason)
		}
		if h.UpgradeActive || h.UpgradeVerdict != "" {
			fmt.Printf("upgrade: active=%v epoch=%s canary=%d%% rolling-back=%v verdict=%q\n",
				h.UpgradeActive, h.UpgradeEpoch, h.UpgradeCanaryPct,
				h.UpgradeRollingBack, h.UpgradeVerdict)
		}
		if h.MeshShards > 0 {
			fmt.Printf("mesh: peers-up=%d/%d shards=%d peer-fetches=%d meta-rebases=%d blob-fetches=%d gossip-rounds=%d\n",
				h.MeshPeersUp, h.MeshPeers, h.MeshShards,
				h.MeshPeerFetches, h.MeshMetaRebases, h.MeshBlobFetches, h.MeshGossipRounds)
		}
		// A draining or degraded daemon is not a healthy daemon — nor
		// is one mid-rollback: non-zero exit so scripts and
		// orchestrators notice.
		if h.Draining || h.Degraded || h.UpgradeRollingBack {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func call(c *ipc.Client, req *ipc.Request) *ipc.Response {
	resp, err := c.Call(req)
	if err != nil {
		fatal(err)
	}
	return resp
}

func readFile(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	return string(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "omos:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: omos [-server addr] [-timeout D] [-retries N] [-allow-rebind] <command> [args]
commands: ping | ls [prefix] | define <path> <file> | define-lib <path> <file>
          asm <path> <file.s> | cc <dir> <unit> <file.c> | put <path> <file.rof>
          rm <path> | run <path> [args...] | run-boot <path> [args...]
          instantiate <path>... | dis <path> | explain <symbol>
          stats | health | graph
          upgrade [--canary=N%] [--prog] <path> <file> ...
          upgrade --commit | --rollback [reason] | --status`)
	os.Exit(2)
}
