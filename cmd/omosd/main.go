// Command omosd runs a persistent OMOS server daemon: a simulated
// machine with the object/meta-object server attached, reachable over
// TCP.  This is the paper's deployment shape — the linker/loader as a
// server that lives across program invocations — with the wire
// protocol standing in for Mach IPC / SysV messages.
//
// Usage:
//
//	omosd [-listen :7070] [-workloads]
//
// With -workloads the daemon boots with the evaluation workloads
// preinstalled (/bin/ls, /bin/codegen, /lib/libc, ...).
package main

import (
	"flag"
	"log"
	"net"

	"omos"
	"omos/internal/daemon"
	"omos/internal/ipc"
	"omos/internal/workload"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP address to listen on")
	workloads := flag.Bool("workloads", false, "preinstall the evaluation workloads")
	flag.Parse()

	sys, err := omos.NewSystem()
	if err != nil {
		log.Fatalf("omosd: %v", err)
	}
	if *workloads {
		if err := daemon.InstallWorkloads(sys, workload.DefaultCodegen()); err != nil {
			log.Fatalf("omosd: installing workloads: %v", err)
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("omosd: %v", err)
	}
	log.Printf("omosd: serving on %s (workloads=%v)", l.Addr(), *workloads)
	if err := ipc.Serve(l, daemon.New(sys)); err != nil {
		log.Fatalf("omosd: %v", err)
	}
}
