// Command omosd runs a persistent OMOS server daemon: a simulated
// machine with the object/meta-object server attached, reachable over
// TCP.  This is the paper's deployment shape — the linker/loader as a
// server that lives across program invocations — with the wire
// protocol standing in for Mach IPC / SysV messages.
//
// Usage:
//
//	omosd [-listen :7070] [-workloads] [-store DIR] [-store-max-bytes N]
//
// With -workloads the daemon boots with the evaluation workloads
// preinstalled (/bin/ls, /bin/codegen, /lib/libc, ...).
//
// With -store the image cache is persistent: every image built is
// written to DIR, and a daemon restarted on the same directory
// warm-loads them — client instantiations hit the cache without a
// single relink.  -store-max-bytes bounds the store (LRU eviction);
// 0 means unlimited.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops
// accepting, lets in-flight requests finish, and flushes the store.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"omos"
	"omos/internal/daemon"
	"omos/internal/ipc"
	"omos/internal/workload"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP address to listen on")
	workloads := flag.Bool("workloads", false, "preinstall the evaluation workloads")
	storeDir := flag.String("store", "", "directory for the persistent image store (empty: in-memory only)")
	storeMax := flag.Int64("store-max-bytes", 0, "image store capacity in bytes (0: unlimited)")
	flag.Parse()

	sys, err := omos.NewSystemWith(omos.Options{
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
	})
	if err != nil {
		log.Fatalf("omosd: %v", err)
	}
	if *storeDir != "" {
		log.Printf("omosd: image store at %s (%d images warm-loaded)", *storeDir, sys.WarmLoaded)
	}
	if *workloads {
		if err := daemon.InstallWorkloads(sys, workload.DefaultCodegen()); err != nil {
			log.Fatalf("omosd: installing workloads: %v", err)
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("omosd: %v", err)
	}
	log.Printf("omosd: serving on %s (workloads=%v)", l.Addr(), *workloads)

	srv := ipc.NewServer(daemon.New(sys))
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		log.Printf("omosd: %v: draining and flushing", sig)
		srv.Shutdown()
		close(done)
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("omosd: %v", err)
	}
	<-done
	if err := sys.Close(); err != nil {
		log.Printf("omosd: closing store: %v", err)
	}
	log.Printf("omosd: shut down cleanly")
}
