// Command omosd runs a persistent OMOS server daemon: a simulated
// machine with the object/meta-object server attached, reachable over
// TCP.  This is the paper's deployment shape — the linker/loader as a
// server that lives across program invocations — with the wire
// protocol standing in for Mach IPC / SysV messages.
//
// Usage:
//
//	omosd [-listen :7070] [-workloads] [-store DIR] [-store-max-bytes N]
//	      [-faults SPEC] [-fault-seed N]
//	      [-max-inflight N] [-queue-depth N] [-build-timeout D]
//	      [-scrub-interval D] [-scrub-per-tick N] [-supervise-interval D]
//	      [-handlers-per-conn N]
//	      [-peers addr,addr...] [-mesh-secret S] [-mesh-gossip-interval D]
//	omosd -health [-listen addr]
//	omosd -graph [-listen addr]
//	omosd -list-faults
//
// With -workloads the daemon boots with the evaluation workloads
// preinstalled (/bin/ls, /bin/codegen, /lib/libc, ...).
//
// With -store the image cache is persistent: every image built is
// written to DIR, and a daemon restarted on the same directory
// warm-loads them — client instantiations hit the cache without a
// single relink.  -store-max-bytes bounds the store (LRU eviction);
// 0 means unlimited.
//
// -health queries a running daemon at the -listen address and prints
// its liveness counters (uptime, in-flight builds, recovered panics,
// quarantined blobs, shed requests, degraded verdict) instead of
// serving; it exits non-zero when the daemon is draining or degraded.
//
// -graph queries a running daemon and prints its build-graph report:
// lifetime node counters, active and recent instantiation runs with
// per-node outcomes (built/rebased/cached/resumed/failed), and the
// tail of the node event stream.
//
// -max-inflight/-queue-depth size the admission gate (overload
// protection: excess requests are shed with a retry-after hint rather
// than queued without bound).  -handlers-per-conn bounds how many
// tagged requests one v2 connection may have executing at once — the
// per-connection backpressure knob of the pipelined protocol (the
// reader stops consuming frames when the pool is full).
// -build-timeout arms the per-build watchdog.  -scrub-interval enables the background store scrubber.
// -supervise-interval enables the degraded-health supervisor.
//
// -peers joins the daemon to a federated mesh: the named daemons and
// this one consistent-hash shard the content-addressed store, and a
// placement miss on a non-owning daemon asks the shard owner before
// relinking locally (metadata-only rebase when the bytes are already
// local, streamed blob otherwise).  -mesh-secret (or $OMOS_MESH_SECRET)
// authenticates peer traffic; client ops stay open.
// -mesh-gossip-interval sets the anti-entropy period.
//
// -faults (or the OMOS_FAULTS environment variable) arms deterministic
// fault injection for resilience drills.  The spec syntax is
// "site:kind[:p=P|n=N][:count=C][:delay=D]" entries joined by ';',
// e.g. "store.read:error:p=0.01" or "build.link:panic:n=100:count=1".
// -fault-seed makes probabilistic rules reproducible.  -list-faults
// prints every injectable site and kind the build knows and exits —
// the authoritative registry for drill scripts and the fault-matrix
// test.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops
// accepting, lets in-flight requests finish, answers stragglers with
// a clean draining error during a short grace window, and flushes the
// store.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"omos"
	"omos/internal/daemon"
	"omos/internal/fault"
	"omos/internal/ipc"
	"omos/internal/mesh"
	"omos/internal/workload"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP address to listen on (or query with -health)")
	workloads := flag.Bool("workloads", false, "preinstall the evaluation workloads")
	storeDir := flag.String("store", "", "directory for the persistent image store (empty: in-memory only)")
	storeMax := flag.Int64("store-max-bytes", 0, "image store capacity in bytes (0: unlimited)")
	health := flag.Bool("health", false, "query a running daemon's health and exit")
	graph := flag.Bool("graph", false, "query a running daemon's build-graph report and exit")
	listFaults := flag.Bool("list-faults", false, "print every injectable fault site and kind, then exit")
	faults := flag.String("faults", os.Getenv("OMOS_FAULTS"),
		"fault-injection spec, e.g. \"store.read:error:p=0.01;build.link:panic:n=100\" (default $OMOS_FAULTS)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault rules")
	maxInflight := flag.Int("max-inflight", 64, "admission gate: concurrent instantiations (0: ungated)")
	queueDepth := flag.Int("queue-depth", 256, "admission gate: waiting requests before shedding")
	buildTimeout := flag.Duration("build-timeout", time.Minute, "watchdog bound per image build (0: none)")
	scrubInterval := flag.Duration("scrub-interval", 30*time.Second, "store scrub tick (0: no scrubbing; needs -store)")
	scrubPerTick := flag.Int("scrub-per-tick", 4, "blobs re-verified per scrub tick")
	superviseInterval := flag.Duration("supervise-interval", 250*time.Millisecond, "supervisor sampling period (0: no supervisor)")
	handlersPerConn := flag.Int("handlers-per-conn", ipc.DefaultHandlerPool,
		"concurrent tagged requests per v2 connection (backpressure: the reader pauses when full)")
	peers := flag.String("peers", "", "comma-separated peer daemon addresses: join the federated mesh")
	meshSecret := flag.String("mesh-secret", os.Getenv("OMOS_MESH_SECRET"),
		"shared secret authenticating mesh peers (default $OMOS_MESH_SECRET)")
	meshGossip := flag.Duration("mesh-gossip-interval", 2*time.Second,
		"anti-entropy gossip period for the mesh (0: manual gossip only)")
	flag.Parse()

	if *health {
		os.Exit(queryHealth(*listen))
	}
	if *graph {
		os.Exit(queryGraph(*listen))
	}
	if *listFaults {
		// The registry dump needs no daemon: it is the build's own
		// fault surface, the ground truth the fault-matrix test pins.
		fmt.Printf("sites: %s\n", strings.Join(fault.Sites(), " "))
		fmt.Printf("kinds: %s\n", strings.Join(fault.Kinds(), " "))
		os.Exit(0)
	}

	sys, err := omos.NewSystemWith(omos.Options{
		StoreDir:          *storeDir,
		StoreMaxBytes:     *storeMax,
		FaultSpec:         *faults,
		FaultSeed:         *faultSeed,
		MaxInflight:       *maxInflight,
		QueueDepth:        *queueDepth,
		BuildTimeout:      *buildTimeout,
		ScrubInterval:     *scrubInterval,
		ScrubPerTick:      *scrubPerTick,
		SuperviseInterval: *superviseInterval,
	})
	if err != nil {
		log.Fatalf("omosd: %v", err)
	}
	if *storeDir != "" {
		log.Printf("omosd: image store at %s (%d images warm-loaded)", *storeDir, sys.WarmLoaded)
	}
	if *faults != "" {
		log.Printf("omosd: fault injection armed: %s (seed %d)", *faults, *faultSeed)
	}
	if *workloads {
		if err := daemon.InstallWorkloads(sys, workload.DefaultCodegen()); err != nil {
			log.Fatalf("omosd: installing workloads: %v", err)
		}
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("omosd: %v", err)
	}
	log.Printf("omosd: serving on %s (workloads=%v)", l.Addr(), *workloads)

	b := daemon.New(sys)
	var node *mesh.Node
	if *peers != "" {
		self := *listen
		if strings.HasPrefix(self, ":") {
			self = "127.0.0.1" + self
		}
		node, err = mesh.New(sys.Srv, mesh.Config{
			Self:           self,
			Secret:         *meshSecret,
			GossipInterval: *meshGossip,
			Faults:         sys.Faults,
		})
		if err != nil {
			log.Fatalf("omosd: mesh: %v", err)
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				node.AddPeer(p)
			}
		}
		b.Mesh = node
		// Tell the fleet we own a shard now; peers that are up push the
		// content the new ring assigns to us, stragglers catch up via
		// gossip.
		if err := node.AnnounceMembership(); err != nil {
			log.Printf("omosd: mesh join (will converge via gossip): %v", err)
		}
		node.Start()
		log.Printf("omosd: mesh member %s with peers %s", self, *peers)
	}

	srv := ipc.NewServer(b)
	srv.HandlerPool = *handlersPerConn
	srv.MeshSecret = *meshSecret
	srv.SetFaults(sys.Faults)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		log.Printf("omosd: %v: draining and flushing", sig)
		srv.Shutdown()
		close(done)
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("omosd: %v", err)
	}
	<-done
	if node != nil {
		node.Close()
	}
	if err := sys.Close(); err != nil {
		log.Printf("omosd: closing store: %v", err)
	}
	log.Printf("omosd: shut down cleanly")
}

// queryGraph dials a running daemon and prints its build-graph report.
func queryGraph(addr string) int {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	c, err := ipc.DialWith(addr, ipc.Options{
		ConnectTimeout: 3 * time.Second,
		CallTimeout:    5 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omosd: graph: %v\n", err)
		return 1
	}
	defer c.Close()
	resp, err := c.Call(&ipc.Request{Op: ipc.OpGraph})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omosd: graph: %v\n", err)
		return 1
	}
	fmt.Print(resp.Text)
	return 0
}

// queryHealth dials a running daemon and prints its health counters.
// Exit status 0 means alive and not draining.
func queryHealth(addr string) int {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	c, err := ipc.DialWith(addr, ipc.Options{
		ConnectTimeout: 3 * time.Second,
		CallTimeout:    5 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "omosd: health: %v\n", err)
		return 1
	}
	defer c.Close()
	resp, err := c.Call(&ipc.Request{Op: ipc.OpHealth})
	if err != nil || resp.Health == nil {
		fmt.Fprintf(os.Stderr, "omosd: health: %v\n", err)
		return 1
	}
	h := resp.Health
	fmt.Printf("uptime:          %s\n", (time.Duration(h.UptimeMS) * time.Millisecond).Round(time.Millisecond))
	fmt.Printf("inflight-builds: %d\n", h.InflightBuilds)
	fmt.Printf("recovered:       %d\n", h.Recovered)
	fmt.Printf("quarantined:     %d\n", h.Quarantined)
	fmt.Printf("warm-loaded:     %d\n", h.WarmLoaded)
	fmt.Printf("queue-depth:     %d\n", h.QueueDepth)
	fmt.Printf("shed:            %d\n", h.Shed)
	fmt.Printf("build-timeouts:  %d\n", h.BuildTimeouts)
	fmt.Printf("scrub-checked:   %d\n", h.ScrubChecked)
	fmt.Printf("scrub-quarantined: %d\n", h.ScrubQuarantined)
	fmt.Printf("nodes-built:     %d\n", h.NodesBuilt)
	fmt.Printf("nodes-resumed:   %d\n", h.NodesResumed)
	fmt.Printf("checkpoints:     %d\n", h.NodesCheckpointed)
	fmt.Printf("checkpoint-bytes: %d\n", h.CheckpointBytes)
	fmt.Printf("degraded:        %v\n", h.Degraded)
	if h.Degraded {
		fmt.Printf("degraded-reason: %s\n", h.DegradedReason)
	}
	if h.UpgradeActive || h.UpgradeVerdict != "" {
		fmt.Printf("upgrade:         active=%v epoch=%s canary=%d%% rolling-back=%v verdict=%q\n",
			h.UpgradeActive, h.UpgradeEpoch, h.UpgradeCanaryPct,
			h.UpgradeRollingBack, h.UpgradeVerdict)
	}
	if h.MeshShards > 0 {
		fmt.Printf("mesh:            peers-up=%d/%d shards=%d peer-fetches=%d meta-rebases=%d blob-fetches=%d gossip-rounds=%d\n",
			h.MeshPeersUp, h.MeshPeers, h.MeshShards,
			h.MeshPeerFetches, h.MeshMetaRebases, h.MeshBlobFetches, h.MeshGossipRounds)
	}
	fmt.Printf("draining:        %v\n", h.Draining)
	if h.Draining || h.Degraded || h.UpgradeRollingBack {
		return 1
	}
	return 0
}
