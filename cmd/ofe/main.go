// Command ofe is the Object File Editor: the non-server version of
// OMOS described in §8.1, offering "a traditional command interface"
// that "manipulates files in the normal Unix file namespace".  It
// applies the Jigsaw module operators to ROF object files on the host
// filesystem, assembles and compiles sources, links executables for
// the simulated machine, and runs them.
//
// Usage:
//
//	ofe asm -o <file.rof> <file.s>
//	ofe cc -o <outdir> [-pic] [-unit name] <file.c>
//	ofe nm <file.rof>
//	ofe dis <file.rof>
//	ofe merge -o <out.rof> <in.rof>...
//	ofe override -o <out.rof> <base.rof> <over.rof>
//	ofe hide|show|restrict|project|freeze -pat <re> -o <out.rof> <in.rof>...
//	ofe copyas -pat <re> -to <name> -o <out.rof> <in.rof>...
//	ofe rename -pat <re> -to <tmpl> [-mode refs|defs|both] -o <out.rof> <in.rof>...
//	ofe link -o <out.exe> [-text addr] [-data addr] [-entry sym] <in.rof>...
//
// Flags come before positional operands (Go flag parsing).  The
// global -fmt rof|tof flag, given right after the command word,
// selects the output object format; inputs are format-detected.
//
//	ofe run <out.exe> [args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"

	"omos/internal/asm"
	"omos/internal/image"
	"omos/internal/jigsaw"
	"omos/internal/link"
	"omos/internal/minic"
	"omos/internal/obj"
	"omos/internal/osim"
	"omos/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	// A leading -fmt flag selects the output object format.
	if len(args) >= 2 && args[0] == "-fmt" {
		outFormat = args[1]
		args = args[2:]
	}
	var err error
	switch cmd {
	case "asm":
		err = cmdAsm(args)
	case "cc":
		err = cmdCC(args)
	case "nm":
		err = cmdNm(args)
	case "dis":
		err = cmdDis(args)
	case "merge", "override", "hide", "show", "restrict", "project", "freeze",
		"copyas", "rename":
		err = cmdModuleOp(cmd, args)
	case "link":
		err = cmdLink(args)
	case "run":
		err = cmdRun(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ofe:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ofe <asm|cc|nm|dis|merge|override|hide|show|restrict|project|freeze|copyas|rename|link|run> ...`)
	os.Exit(2)
}

func loadObj(path string) (*obj.Object, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// The format switch (§7): ROF or TOF, detected by content.
	return obj.DecodeAny(b)
}

// outFormat is settable with the global -fmt flag (rof or tof).
var outFormat = "rof"

func saveObj(path string, o *obj.Object) error {
	f, ok := obj.LookupFormat(outFormat)
	if !ok {
		return fmt.Errorf("unknown object format %q (have %v)", outFormat, obj.Formats())
	}
	b, err := f.Encode(o)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "", "output ROF path")
	fs.Parse(args)
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("asm: want one source file and -o")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	o, err := asm.Assemble(fs.Arg(0), string(src))
	if err != nil {
		return err
	}
	return saveObj(*out, o)
}

func cmdCC(args []string) error {
	fs := flag.NewFlagSet("cc", flag.ExitOnError)
	out := fs.String("o", ".", "output directory")
	pic := fs.Bool("pic", false, "position-independent output")
	unit := fs.String("unit", "", "unit name (default: source path)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("cc: want one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	u := *unit
	if u == "" {
		u = fs.Arg(0)
	}
	objs, err := minic.Compile(string(src), minic.Options{Unit: u, PIC: *pic})
	if err != nil {
		return err
	}
	for i, o := range objs {
		path := fmt.Sprintf("%s/%s.%d.rof", *out, sanitize(u), i)
		if err := saveObj(path, o); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

func sanitize(s string) string {
	out := []byte(s)
	for i := range out {
		if out[i] == '/' {
			out[i] = '_'
		}
	}
	return string(out)
}

func cmdNm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("nm: want one object file")
	}
	o, err := loadObj(args[0])
	if err != nil {
		return err
	}
	syms := append([]obj.Symbol(nil), o.Syms...)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	for _, s := range syms {
		if !s.Defined {
			fmt.Printf("%16s U %s\n", "", s.Name)
			continue
		}
		c := "T"
		switch s.Section {
		case obj.SecData:
			c = "D"
		case obj.SecBSS:
			c = "B"
		}
		if s.Bind == obj.BindLocal {
			c = string(c[0] + 32) // lower-case for locals, like nm(1)
		}
		fmt.Printf("%016x %s %s\n", s.Offset, c, s.Name)
	}
	return nil
}

func cmdDis(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dis: want one object file")
	}
	o, err := loadObj(args[0])
	if err != nil {
		return err
	}
	fmt.Print(o.String())
	fmt.Println()
	fmt.Print(vm.Disassemble(o.Text, 0))
	return nil
}

func cmdModuleOp(op string, args []string) error {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	out := fs.String("o", "", "output ROF path")
	pat := fs.String("pat", "", "symbol pattern (regular expression)")
	to := fs.String("to", "", "replacement name/template")
	mode := fs.String("mode", "both", "rename mode: refs|defs|both")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("%s: want input files and -o", op)
	}
	var objs []*obj.Object
	for _, p := range fs.Args() {
		o, err := loadObj(p)
		if err != nil {
			return err
		}
		objs = append(objs, o)
	}
	var m *jigsaw.Module
	var err error
	if op == "override" {
		if len(objs) != 2 {
			return fmt.Errorf("override: want exactly two inputs")
		}
		base, err1 := jigsaw.NewModule(objs[0])
		over, err2 := jigsaw.NewModule(objs[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("override: %v %v", err1, err2)
		}
		m, err = jigsaw.Override(base, over)
	} else {
		m, err = jigsaw.NewModule(objs...)
	}
	if err != nil {
		return err
	}
	if op != "merge" && op != "override" {
		if *pat == "" {
			return fmt.Errorf("%s: -pat is required", op)
		}
		re, rerr := regexp.Compile(*pat)
		if rerr != nil {
			return rerr
		}
		switch op {
		case "hide":
			m = m.Hide(re)
		case "show":
			m = m.Show(re)
		case "restrict":
			m = m.Restrict(re)
		case "project":
			m = m.Project(re)
		case "freeze":
			m = m.Freeze(re)
		case "copyas":
			if *to == "" {
				return fmt.Errorf("copyas: -to is required")
			}
			m, err = m.CopyAs(re, *to)
			if err != nil {
				return err
			}
		case "rename":
			if *to == "" {
				return fmt.Errorf("rename: -to is required")
			}
			rm := jigsaw.RenameBoth
			switch *mode {
			case "refs":
				rm = jigsaw.RenameRefs
			case "defs":
				rm = jigsaw.RenameDefs
			case "both":
			default:
				return fmt.Errorf("rename: bad -mode %q", *mode)
			}
			m = m.Rename(re, *to, rm)
		}
	}
	flat, err := link.Partial(m, *out)
	if err != nil {
		return err
	}
	return saveObj(*out, flat)
}

func cmdLink(args []string) error {
	fs := flag.NewFlagSet("link", flag.ExitOnError)
	out := fs.String("o", "", "output executable path")
	text := fs.String("text", "0x100000", "text base address")
	data := fs.String("data", "0x40000000", "data base address")
	entry := fs.String("entry", "_start", "entry symbol")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("link: want input files and -o")
	}
	tb, err := strconv.ParseUint(*text, 0, 64)
	if err != nil {
		return fmt.Errorf("link: bad -text: %v", err)
	}
	db, err := strconv.ParseUint(*data, 0, 64)
	if err != nil {
		return fmt.Errorf("link: bad -data: %v", err)
	}
	var objs []*obj.Object
	for _, p := range fs.Args() {
		o, lerr := loadObj(p)
		if lerr != nil {
			return lerr
		}
		objs = append(objs, o)
	}
	m, err := jigsaw.NewModule(objs...)
	if err != nil {
		return err
	}
	res, err := link.Link(m, link.Options{
		Name: *out, TextBase: tb, DataBase: db, Entry: *entry,
	})
	if err != nil {
		return err
	}
	f := &image.ExecFile{Image: *res.Image}
	enc, err := image.EncodeExec(f)
	if err != nil {
		return err
	}
	return os.WriteFile(*out, enc, 0o755)
}

func cmdRun(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("run: want an executable")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	f, err := image.DecodeExec(data)
	if err != nil {
		return err
	}
	k := osim.NewKernel()
	if err := k.FS.WriteFile("/exe", data); err != nil {
		return err
	}
	p := k.Spawn()
	if _, err := k.ExecNative(p, "/exe", args); err != nil {
		return err
	}
	_ = f
	code, err := k.RunToExit(p)
	if err != nil {
		return err
	}
	os.Stdout.WriteString(p.Output.String())
	fmt.Fprintf(os.Stderr, "exit=%d %s\n", code, p.Clock.String())
	os.Exit(int(code))
	return nil
}
