module omos

go 1.22
