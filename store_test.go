package omos_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omos"
	"omos/internal/daemon"
	"omos/internal/workload"
)

// smallCG keeps the end-to-end store tests fast.
var smallCG = workload.CodegenParams{Units: 4, FuncsPerUnit: 4, HotIters: 2}

func newStoreSys(t *testing.T, dir string) *omos.System {
	t.Helper()
	sys, err := omos.NewSystemWith(omos.Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.InstallWorkloads(sys, smallCG); err != nil {
		t.Fatal(err)
	}
	return sys
}

// instantiateCodegen instantiates /bin/codegen against a fresh process
// and returns the server cycles that instantiation charged it.
func instantiateCodegen(t *testing.T, sys *omos.System) uint64 {
	t.Helper()
	p := sys.Kern.Spawn()
	defer p.Release()
	if _, err := sys.Srv.Instantiate("/bin/codegen", p); err != nil {
		t.Fatal(err)
	}
	return p.Clock.Server
}

// TestWarmRestartEndToEnd is the acceptance path: build codegen with a
// store attached, tear the system down, boot a fresh one on the same
// directory, and re-instantiate without a single image build — at a
// measurably lower cost than the cold session.
func TestWarmRestartEndToEnd(t *testing.T) {
	dir := t.TempDir()

	sys1 := newStoreSys(t, dir)
	if sys1.WarmLoaded != 0 {
		t.Fatalf("cold boot warm-loaded %d images", sys1.WarmLoaded)
	}
	coldCycles := instantiateCodegen(t, sys1)
	built := sys1.Srv.Stats().ImagesBuilt
	if built == 0 {
		t.Fatal("cold session built nothing")
	}
	res, err := sys1.Run("/bin/codegen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	sys2 := newStoreSys(t, dir)
	if sys2.WarmLoaded == 0 {
		t.Fatal("rebooted system warm-loaded nothing")
	}
	warmCycles := instantiateCodegen(t, sys2)
	if sys2.Srv.Stats().ImagesBuilt != 0 {
		t.Fatalf("warm session rebuilt %d images (want 0)", sys2.Srv.Stats().ImagesBuilt)
	}
	if warmCycles*2 >= coldCycles {
		t.Fatalf("warm instantiation not measurably cheaper: warm=%d cold=%d",
			warmCycles, coldCycles)
	}
	// The reconstructed image must execute identically.
	res2, err := sys2.Run("/bin/codegen", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExitCode != res.ExitCode || res2.Output != res.Output {
		t.Fatalf("warm run diverged: exit %d vs %d", res2.ExitCode, res.ExitCode)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptStoreEntryEndToEnd corrupts one persisted blob on disk;
// the next boot must reject it (counting the reject) and transparently
// rebuild instead of failing.
func TestCorruptStoreEntryEndToEnd(t *testing.T) {
	dir := t.TempDir()

	sys1 := newStoreSys(t, dir)
	instantiateCodegen(t, sys1)
	if _, err := sys1.Run("/bin/codegen", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var blobs []string
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".img") {
			blobs = append(blobs, filepath.Join(dir, de.Name()))
		}
	}
	if len(blobs) == 0 {
		t.Fatal("no blobs persisted")
	}
	b, err := os.ReadFile(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(blobs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	sys2 := newStoreSys(t, dir)
	if sys2.Srv.Stats().StoreCorrupt == 0 {
		t.Fatalf("corrupt blob not rejected: %+v", sys2.Srv.Stats())
	}
	instantiateCodegen(t, sys2)
	res, err := sys2.Run("/bin/codegen", nil)
	if err != nil {
		t.Fatalf("instantiation after corruption failed: %v", err)
	}
	if sys2.Srv.Stats().ImagesBuilt == 0 {
		t.Fatal("corrupt entry was not rebuilt")
	}
	_ = res
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}
