// Package omos is the public facade of the OMOS reproduction: a
// persistent object/meta-object server that provides program linking
// and loading as a special case of generic object instantiation
// (Orr, Bonn, Lepreau, Mecklenburg: "Fast and Flexible Shared
// Libraries", Winter USENIX 1993).
//
// A System bundles a simulated machine (CPU, paged memory, kernel,
// filesystem), an OMOS server, and the loader runtime.  Programs and
// libraries are defined as blueprint meta-objects; instantiation
// produces cached, relocated images whose read-only pages are shared
// between every client process that maps them.
//
//	sys, _ := omos.NewSystem()
//	sys.DefineLibrary("/lib/mylib", `(source "c" "int f(int x){return x*2;}")`)
//	sys.Define("/bin/app", `(merge /lib/crt0.o (source "c" "
//	    extern int f(int);
//	    int main() { return f(21); }") /lib/mylib)`)
//	res, _ := sys.Run("/bin/app", nil)
//	// res.ExitCode == 42
package omos

import (
	"errors"
	"fmt"
	"time"

	"omos/internal/asm"
	"omos/internal/fault"
	"omos/internal/loader"
	"omos/internal/minic"
	"omos/internal/obj"
	"omos/internal/osim"
	"omos/internal/server"
	"omos/internal/store"
	"omos/internal/vm"
)

// System is a booted simulated machine with an OMOS server attached.
type System struct {
	// Kern is the simulated operating system instance.
	Kern *osim.Kernel
	// Srv is the OMOS object/meta-object server.
	Srv *server.Server
	// RT is the loader runtime (bootstrap, integrated, and
	// partial-image exec paths).
	RT *loader.Runtime
	// WarmLoaded is the number of cached images reconstructed from the
	// persistent store at boot (zero without a store or on a cold
	// directory).
	WarmLoaded int
	// Faults is the deterministic fault-injection set armed at boot
	// (nil when Options.FaultSpec was empty).  Shared by the server,
	// the store, and the frame table.
	Faults *fault.Set

	// stops are the background loops (scrubber, supervisor) Close
	// shuts down.
	stops []func()
}

// Options configures system boot.
type Options struct {
	// StoreDir, when non-empty, names a directory backing the image
	// cache persistently: every image built is written through, and
	// the next boot on the same directory warm-loads it — cached
	// instantiations across daemon restarts without a single relink.
	StoreDir string
	// StoreMaxBytes bounds the store's payload bytes; 0 means
	// unlimited.  When over budget, least-recently-used images that no
	// live process maps and no cached image links against are evicted.
	StoreMaxBytes int64
	// FaultSpec, when non-empty, arms deterministic fault injection
	// across the store, server build pipeline, and frame table.  The
	// syntax is fault.Parse's: "site:kind[:p=P|n=N][:count=C][:delay=D]"
	// entries separated by ';' or ','.
	FaultSpec string
	// FaultSeed seeds the injection PRNG; 0 means seed 1 (injection
	// stays reproducible by default).
	FaultSeed int64

	// MaxInflight and QueueDepth size the admission gate on the
	// server's instantiation entry points: up to MaxInflight requests
	// run at once, up to QueueDepth more wait, and the rest are shed
	// with a retry-after hint.  Both zero leaves the server ungated
	// (the pre-overload-protection behavior); either non-zero gates
	// with defaults (64/256) for the other.
	MaxInflight int
	QueueDepth  int
	// BuildTimeout bounds each image build; past it the watchdog
	// cancels the build and singleflight followers re-elect.  Zero
	// disables the watchdog.
	BuildTimeout time.Duration
	// ScrubInterval enables the store's background scrubber (requires
	// StoreDir): every interval it re-verifies ScrubPerTick blob
	// checksums, quarantining rot proactively, and sweeps orphaned
	// temp files.  Zero disables scrubbing.
	ScrubInterval time.Duration
	// ScrubPerTick is how many blobs each scrub tick verifies
	// (default 4).
	ScrubPerTick int
	// SuperviseInterval enables the daemon supervisor: every interval
	// it samples queue depth, in-flight build age, and store fill, and
	// flips the degraded health flag when any crosses its high-water
	// mark.  Zero disables supervision.
	SuperviseInterval time.Duration
}

// NewSystem boots a fresh machine, attaches an OMOS server, installs
// the bootstrap loader binary, and provides the default startup object
// at /lib/crt0.o.
func NewSystem() (*System, error) { return NewSystemWith(Options{}) }

// NewSystemWith boots a system with explicit options.  With a store
// directory configured, images persisted by previous sessions are
// reconstructed before the system is returned.
func NewSystemWith(opts Options) (*System, error) {
	k := osim.NewKernel()
	srv := server.New(k)
	rt, err := loader.Setup(k, srv)
	if err != nil {
		return nil, err
	}
	if err := rt.InstallBoot(); err != nil {
		return nil, err
	}
	crt0, err := asm.Assemble("crt0.s", crt0Src)
	if err != nil {
		return nil, err
	}
	if err := srv.PutObject("/lib/crt0.o", crt0); err != nil {
		return nil, err
	}
	sys := &System{Kern: k, Srv: srv, RT: rt}
	if opts.FaultSpec != "" {
		seed := opts.FaultSeed
		if seed == 0 {
			seed = 1
		}
		f, err := fault.Parse(opts.FaultSpec, seed)
		if err != nil {
			return nil, fmt.Errorf("omos: fault spec: %w", err)
		}
		sys.Faults = f
		srv.SetFaults(f)
		k.FT.Faults = f
	}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir, opts.StoreMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("omos: opening image store: %w", err)
		}
		st.SetFaults(sys.Faults)
		sys.WarmLoaded = srv.AttachStore(st)
		if opts.ScrubInterval > 0 {
			sys.stops = append(sys.stops, st.StartScrub(store.ScrubConfig{
				Interval: opts.ScrubInterval,
				PerTick:  opts.ScrubPerTick,
			}))
		}
	}
	if opts.MaxInflight > 0 || opts.QueueDepth > 0 {
		srv.SetAdmission(server.NewAdmission(server.AdmissionConfig{
			MaxInflight: opts.MaxInflight,
			QueueDepth:  opts.QueueDepth,
		}))
	}
	if opts.BuildTimeout > 0 {
		srv.SetBuildTimeout(opts.BuildTimeout)
	}
	if opts.SuperviseInterval > 0 {
		sys.stops = append(sys.stops, srv.StartSupervisor(server.SupervisorConfig{
			Interval: opts.SuperviseInterval,
		}))
	}
	return sys, nil
}

// Close stops the background loops (scrubber, supervisor), then
// flushes and detaches the persistent image store, if any.  The
// system remains usable afterwards but stops persisting.
func (s *System) Close() error {
	for _, stop := range s.stops {
		stop()
	}
	s.stops = nil
	return s.Srv.CloseStore()
}

// FlushStore persists the image store's index without detaching it.
func (s *System) FlushStore() error { return s.Srv.FlushStore() }

// crt0Src is the default startup stub: argc/argv pass through to main
// in R1/R2; main's return value becomes the exit status.
const crt0Src = `
.text
_start:
    call main
    mov r1, r0
    sys 1
`

// Define stores a program meta-object from blueprint source.
func (s *System) Define(path, blueprint string) error {
	return s.Srv.Define(path, blueprint)
}

// DefineLibrary stores a library-class meta-object.
func (s *System) DefineLibrary(path, blueprint string) error {
	return s.Srv.DefineLibrary(path, blueprint)
}

// PutObject stores a relocatable object in the namespace.
func (s *System) PutObject(path string, o *obj.Object) error {
	return s.Srv.PutObject(path, o)
}

// CompileC compiles mini-C source and stores the resulting objects
// under dir (one object per function plus a globals object), returning
// the stored paths.
func (s *System) CompileC(dir, unit, src string) ([]string, error) {
	objs, err := minic.Compile(src, minic.Options{Unit: unit})
	if err != nil {
		return nil, err
	}
	var paths []string
	for i, o := range objs {
		p := fmt.Sprintf("%s/%s.%d.o", dir, unit, i)
		if err := s.Srv.PutObject(p, o); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Assemble assembles source text and stores the object at path.
func (s *System) Assemble(path, src string) error {
	o, err := asm.Assemble(path, src)
	if err != nil {
		return err
	}
	return s.Srv.PutObject(path, o)
}

// List returns namespace paths under a prefix.
func (s *System) List(prefix string) []string { return s.Srv.List(prefix) }

// RunResult reports a completed program execution.
type RunResult struct {
	ExitCode uint64
	Output   string
	// Clock is the process's simulated time accounting.
	Clock osim.Clock
	// TextPages is the number of distinct executable pages touched.
	TextPages int
	// Trace holds monitoring events if the image was instrumented.
	Trace []uint64
}

// Run instantiates and executes the named program meta-object through
// the integrated exec path and returns its result.  Faults are
// symbolized against the image's bound symbol table (the seed of the
// paper's planned gdb/OMOS integration, §4.1).
func (s *System) Run(name string, args []string) (*RunResult, error) {
	res, err := s.runWith(func() (*osim.Process, error) {
		return s.RT.ExecIntegrated(name, args)
	})
	if err != nil {
		var f *vm.Fault
		if errors.As(err, &f) {
			if inst, ierr := s.Srv.Instantiate(name, nil); ierr == nil {
				if sym, off, owner, ok := inst.SymbolAt(f.PC); ok {
					return nil, fmt.Errorf("%w (pc in %s+%#x, image %s)", err, sym, off, owner)
				}
			}
		}
		return nil, err
	}
	return res, nil
}

// RunBootstrap executes the program through the bootstrap loader (an
// IPC round trip to the server), as on systems where OMOS is not
// integrated with exec.
func (s *System) RunBootstrap(name string, args []string) (*RunResult, error) {
	return s.runWith(func() (*osim.Process, error) {
		return s.RT.ExecBootstrap(name, args)
	})
}

func (s *System) runWith(launch func() (*osim.Process, error)) (*RunResult, error) {
	p, err := launch()
	if err != nil {
		return nil, err
	}
	code, err := s.Kern.RunToExit(p)
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		ExitCode:  code,
		Output:    p.Output.String(),
		Clock:     p.Clock,
		TextPages: p.AS.TouchedText,
		Trace:     p.Trace,
	}
	p.Release()
	return res, nil
}

// BuildPartialExec builds a partial-image executable (§4.2) for a
// program meta-object and installs it in the simulated filesystem.
func (s *System) BuildPartialExec(metaName, execPath string) error {
	return s.RT.BuildPartialExec(metaName, execPath)
}

// RunPartial executes a previously built partial-image executable.
func (s *System) RunPartial(execPath string, args []string) (*RunResult, error) {
	return s.runWith(func() (*osim.Process, error) {
		return s.RT.ExecPartial(execPath, args)
	})
}

// Symbols dynamically instantiates a meta-object and returns the bound
// values of the requested symbols — the §5 dynamic loading interface
// ("a list of symbols whose bound values are to be returned from
// OMOS").
func (s *System) Symbols(name string, symbols ...string) (map[string]uint64, error) {
	inst, err := s.Srv.Instantiate(name, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(symbols))
	for _, sym := range symbols {
		addr, ok := inst.Lookup(sym)
		if !ok {
			return nil, fmt.Errorf("omos: symbol %q not bound by %s", sym, name)
		}
		out[sym] = addr
	}
	return out, nil
}

// MemStats reports machine-wide physical memory statistics (sharing
// accounting).
func (s *System) MemStats() osim.MemStats { return s.Kern.FT.Stats() }
